#include "net/netstack.h"

#include <stdexcept>

#include "checksum/internet_checksum.h"
#include "mbuf/mbuf_ops.h"
#include "net/ip.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "overload/overload.h"
#include "sim/timer_wheel.h"

namespace nectar::net {

NetStack::NetStack(HostEnv env) : env_(env) {
  ip_ = std::make_unique<Ip>(*this);
  udp_ = std::make_unique<Udp>(*this);
}

NetStack::~NetStack() {
  // Outstanding TIME-WAIT / zombie-reaper timers capture `this`; the
  // simulator (and possibly the wheel) outlive the stack, so disarm them.
  for (auto& tw : tw_slab_) tw.timer.cancel();
  for (auto& [tp, timer] : zombies_) timer.cancel();
}

sim::TimerHandle NetStack::proto_timer(sim::Duration d, sim::SmallFn fn) {
  if (env_.wheel != nullptr) return env_.wheel->schedule_after(d, std::move(fn));
  return env_.sim.timer_after(d, std::move(fn));
}

void NetStack::add_ifnet(Ifnet* ifp) {
  ifp->set_stack(this);
  ifnets_.push_back(ifp);
}

Ifnet* NetStack::find_ifnet(const std::string& name) const {
  for (Ifnet* ifp : ifnets_) {
    if (ifp->name() == name) return ifp;
  }
  return nullptr;
}

IpAddr NetStack::source_addr_for(IpAddr dst) const {
  auto r = routes_.lookup(dst);
  return r ? r->ifp->addr() : 0;
}

void NetStack::tcp_bind(const ConnKey& key, TcpConnection* tp) {
  if (!tcp_conns_.insert(key, tp))
    throw std::invalid_argument("netstack: tcp tuple in use");
  ++lport_use_[key.lport];
  // First binding names the flow: the id rides every packet the connection
  // sends so the CAB's DMA arbiter can queue per flow. The arbitration class
  // weight travels with the id — broadcast to every interface, since the
  // route is not pinned yet.
  if (tp->flow_id() == 0) {
    tp->set_flow_id(++next_flow_id_);
    if (tp->params().arb_weight != 1) {
      for (Ifnet* ifp : ifnets_)
        ifp->set_flow_weight(tp->flow_id(), tp->params().arb_weight);
    }
  }
}

void NetStack::tcp_unbind(const ConnKey& key) {
  if (tcp_conns_.erase(key) && lport_use_[key.lport] > 0) {
    --lport_use_[key.lport];
  }
}

void NetStack::tcp_listen(IpAddr laddr, std::uint16_t lport, TcpConnection* tp) {
  tcp_listeners_[std::make_pair(laddr, lport)].push_back(tp);
}

void NetStack::tcp_unlisten(IpAddr laddr, std::uint16_t lport, TcpConnection* tp) {
  const auto it = tcp_listeners_.find(std::make_pair(laddr, lport));
  if (it == tcp_listeners_.end()) return;
  std::erase(it->second, tp);
  if (it->second.empty()) tcp_listeners_.erase(it);
}

TcpConnection* NetStack::tcp_lookup(const ConnKey& key) const {
  return tcp_conns_.find(key);
}

TcpConnection* NetStack::tcp_lookup_listen(IpAddr laddr, std::uint16_t lport) const {
  auto it = tcp_listeners_.find(std::make_pair(laddr, lport));
  if (it != tcp_listeners_.end()) return it->second.front();
  // Wildcard listen (laddr 0).
  it = tcp_listeners_.find(std::make_pair(IpAddr{0}, lport));
  return it != tcp_listeners_.end() ? it->second.front() : nullptr;
}

void NetStack::listen_service_register(IpAddr laddr, std::uint16_t lport) {
  ++listen_services_[std::make_pair(laddr, lport)];
}

void NetStack::listen_service_unregister(IpAddr laddr, std::uint16_t lport) {
  const auto it = listen_services_.find(std::make_pair(laddr, lport));
  if (it == listen_services_.end()) return;
  if (--it->second <= 0) listen_services_.erase(it);
}

bool NetStack::listen_service_exists(IpAddr laddr, std::uint16_t lport) const {
  // A service is anything a SYN could reach: an accept-loop registration
  // (shim listeners) or a live listening connection (raw sockets).
  return listen_services_.contains(std::make_pair(laddr, lport)) ||
         listen_services_.contains(std::make_pair(IpAddr{0}, lport)) ||
         tcp_listeners_.contains(std::make_pair(laddr, lport)) ||
         tcp_listeners_.contains(std::make_pair(IpAddr{0}, lport));
}

std::uint16_t NetStack::alloc_ephemeral_port(IpAddr laddr, IpAddr faddr,
                                             std::uint16_t fport) {
  constexpr int kRange = 65536 - 10000;  // candidate ports per sweep
  // Fast pass: a port with no binding at all is free for any tuple.
  for (int tries = 0; tries < kRange; ++tries) {
    const std::uint16_t p = next_ephemeral_++;
    if (next_ephemeral_ < 10000) next_ephemeral_ = 10000;
    if (lport_use_[p] == 0) return p;
  }
  // Every port carries bindings (>55k connections): fall back to full-tuple
  // vacancy — multiple server endpoints let the total keep growing.
  for (int tries = 0; tries < kRange; ++tries) {
    const std::uint16_t p = next_ephemeral_++;
    if (next_ephemeral_ < 10000) next_ephemeral_ = 10000;
    const ConnKey key{laddr, p, faddr, fport};
    if (!tcp_conns_.contains(key) && !tw_index_.contains(key)) return p;
  }
  // True exhaustion: every (laddr, p, faddr, fport) tuple is taken. Under
  // population churn this is an operating condition, not a program error —
  // report it (0 is never a valid ephemeral port) and let the caller fail
  // the one connect with an EADDRNOTAVAIL-style error.
  ++stats_.eph_port_exhausted;
  return 0;
}

void NetStack::adopt_zombie(std::unique_ptr<TcpConnection> tp) {
  // Longest plausible straggler: a retransmission timer backed off to
  // rto_max. One linger period later nothing can still reference the object.
  constexpr sim::Duration kZombieLinger = 31 * sim::kSecond;
  zombies_.emplace_back(std::move(tp), sim::TimerHandle{});
  const auto it = std::prev(zombies_.end());
  it->second = proto_timer(kZombieLinger, [this, it] { zombies_.erase(it); });
}

// --- compact TIME-WAIT ------------------------------------------------------

void NetStack::timewait_enter(const ConnKey& key, std::uint32_t rcv_nxt,
                              std::uint32_t snd_nxt, sim::Duration linger) {
  // A recycled tuple can re-enter TIME-WAIT while an old record still
  // lingers; the new incarnation's state wins.
  if (TimeWaitRecord* old = tw_index_.find(key)) timewait_release(old);
  std::uint32_t idx;
  if (!tw_free_.empty()) {
    idx = tw_free_.back();
    tw_free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(tw_slab_.size());
    tw_slab_.emplace_back();
    tw_slab_.back().slot = idx;
  }
  TimeWaitRecord& tw = tw_slab_[idx];
  tw.key = key;
  tw.rcv_nxt = rcv_nxt;
  tw.snd_nxt = snd_nxt;
  tw.live = true;
  tw.timer = proto_timer(linger, [this, idx] {
    TimeWaitRecord& rec = tw_slab_[idx];
    if (!rec.live) return;
    ++stats_.timewait_expiries;
    timewait_release(&rec);
  });
  tw_index_.insert(key, &tw);
  ++tw_live_;
  ++stats_.timewait_enters;
}

void NetStack::timewait_release(TimeWaitRecord* tw) {
  tw->timer.cancel();
  tw->live = false;
  tw_index_.erase(tw->key);
  tw_free_.push_back(tw->slot);
  --tw_live_;
}

void NetStack::set_raw_handler(std::uint8_t proto, RawHandler h) {
  if (!h) {
    raw_handlers_.erase(proto);
  } else {
    raw_handlers_[proto] = std::move(h);
  }
}

bool NetStack::demux_checksum_ok(const mbuf::Mbuf* pkt,
                                 const IpHeader& ih) const {
  const auto seg_len = static_cast<std::uint16_t>(pkt->pkthdr.len);
  const std::uint32_t pseudo =
      transport_pseudo_sum(ih.src, ih.dst, kProtoTcp, seg_len);
  bool any_descriptor = false;
  for (const mbuf::Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->is_descriptor()) any_descriptor = true;
  }
  if (pkt->pkthdr.rx_hw_sum_valid) {
    return checksum::fold(pseudo + pkt->pkthdr.rx_hw_sum) == 0xffff;
  }
  if (any_descriptor) return true;  // outboard bytes: nothing to read here
  return checksum::fold(pseudo +
                        mbuf::in_cksum_range(pkt, 0, pkt->pkthdr.len)) == 0xffff;
}

sim::Task<void> NetStack::tcp_respond(KernCtx ctx, IpAddr src, IpAddr dst,
                                      std::uint16_t sport, std::uint16_t dport,
                                      std::uint32_t seq, std::uint32_t ack,
                                      std::uint8_t flags, std::uint16_t win,
                                      std::uint16_t mss) {
  co_await env_.cpu.run(sim::usec(env_.costs.tcp_output_us), ctx.acct, ctx.prio);
  TcpHeader th;
  th.src_port = sport;
  th.dst_port = dport;
  th.seq = seq;
  th.flags = flags;
  if (flags & kTcpAck) th.ack = ack;
  th.win = win;
  // Cookie SYN|ACKs carry the (class-rounded) MSS but never window scaling:
  // a scale would need cookie bits the MAC can't spare, so the reconstructed
  // connection runs unscaled.
  if (flags & kTcpSyn) th.mss = mss;
  const std::size_t hlen = kTcpHdrLen + tcp_options_len(th);
  mbuf::Mbuf* h = env_.pool.get_hdr();
  h->align_end(hlen);
  std::byte hdr_bytes[64];
  std::span<std::byte> hb{hdr_bytes, hlen};
  th.checksum = 0;
  write_tcp_header(hb, th);
  const std::uint32_t sum =
      transport_pseudo_sum(src, dst, kProtoTcp, static_cast<std::uint16_t>(hlen)) +
      checksum::ones_sum(hb);
  th.checksum = checksum::finish(sum);
  write_tcp_header(hb, th);
  h->append(hb);
  h->pkthdr.len = static_cast<int>(hlen);
  co_await ip_->output(ctx, h, src, dst, kProtoTcp, /*dont_fragment=*/true);
}

sim::Task<void> NetStack::transport_input(KernCtx ctx, std::uint8_t proto,
                                          mbuf::Mbuf* pkt, const IpHeader& ih) {
  switch (proto) {
    case kProtoTcp: {
      if (pkt->pkthdr.len < static_cast<int>(kTcpHdrLen)) {
        env_.pool.free_chain(pkt);
        co_return;
      }
      pkt = mbuf::m_pullup(pkt, static_cast<int>(kTcpHdrLen));
      // A header that does not parse (e.g. a corrupted data-offset nibble)
      // is charged to the checksum, same as tcp_input's malformed-segment
      // guard — it must not escape the demux as an exception.
      TcpHeader th;
      try {
        th = read_tcp_header(pkt->span());
      } catch (const std::exception&) {
        ++stats_.bad_checksum;
        env_.pool.free_chain(pkt);
        co_return;
      }
      const ConnKey key{ih.dst, th.dst_port, ih.src, th.src_port};
      TcpConnection* tp = tcp_lookup(key);

      // Compact TIME-WAIT interception: the tuple's connection object is
      // gone but its 2*MSL obligations aren't. Checksum first — a corrupted
      // segment must not recycle or re-ACK anything.
      if (tp == nullptr) {
        if (TimeWaitRecord* tw = timewait_lookup(key)) {
          if (!demux_checksum_ok(pkt, ih)) {
            ++stats_.bad_checksum;
            env_.pool.free_chain(pkt);
            co_return;
          }
          if ((th.flags & kTcpRst) != 0) {
            // RFC 1337: RSTs don't cut TIME-WAIT short.
            env_.pool.free_chain(pkt);
            co_return;
          }
          if ((th.flags & kTcpSyn) != 0 && (th.flags & kTcpAck) == 0 &&
              seq_gt(th.seq, tw->rcv_nxt)) {
            // A fresh SYN above the old window recycles the tuple (BSD): drop
            // the record and let the SYN take the normal listen path below.
            ++stats_.timewait_recycles;
            timewait_release(tw);
          } else {
            // Anything else (late FIN retransmission, stray data) re-earns
            // the final ACK the record exists to send.
            ++stats_.timewait_acks;
            const std::uint32_t snd_nxt = tw->snd_nxt;
            const std::uint32_t rcv_nxt = tw->rcv_nxt;
            env_.pool.free_chain(pkt);
            co_await tcp_respond(ctx, ih.dst, ih.src, th.dst_port, th.src_port,
                                 snd_nxt, rcv_nxt, kTcpAck, /*win=*/0, 0);
            co_return;
          }
        }
      }

      if (tp == nullptr) {
        // A pure ACK with no bound tuple and no SYN_RCVD socket may complete
        // a cookie handshake: validate before the listener fallback would
        // silently eat it. Checksum precedes the cookie check — a corrupted
        // ACK field must be charged to the checksum, not "rejected cookie".
        const bool pure_ack = (th.flags & kTcpAck) != 0 &&
                              (th.flags & (kTcpSyn | kTcpRst)) == 0;
        if (syn_cookies_ && pure_ack &&
            listen_service_exists(ih.dst, th.dst_port)) {
          if (!demux_checksum_ok(pkt, ih)) {
            ++stats_.bad_checksum;
            env_.pool.free_chain(pkt);
            co_return;
          }
          const SynCookieJar::Decoded dec =
              cookie_jar_.decode(ih.dst, th.dst_port, ih.src, th.src_port,
                                 th.ack - 1, env_.sim.now());
          if (dec.valid) {
            if (TcpConnection* lp = tcp_lookup_listen(ih.dst, th.dst_port)) {
              // Reconstruct the connection the cookie stands for and feed it
              // this ACK (which may piggyback data).
            ++stats_.syn_cookies_accepted;
              ++stats_.tcp_in;
              lp->cookie_establish(ih, th, dec.mss);
              co_await lp->input(ctx, pkt, ih);
            } else {
              // Valid cookie, but accept's backlog is still exhausted: the
              // client's data retransmission retries the completion later.
              ++stats_.syn_cookie_overflows;
              env_.pool.free_chain(pkt);
            }
          } else {
            ++stats_.syn_cookies_rejected;
            env_.pool.free_chain(pkt);
          }
          co_return;
        }
        // Overload admission gate: a fresh SYN is the one segment that
        // commits new connection state, so under resource pressure it is
        // deferred — dropped before the listen lookup, with the client's SYN
        // retransmission as the retry. Checksum first so a corrupted SYN is
        // charged to the checksum, not to admission.
        if (auto* ovl = env_.overload;
            ovl != nullptr && (th.flags & kTcpSyn) != 0 &&
            (th.flags & kTcpAck) == 0 &&
            listen_service_exists(ih.dst, th.dst_port) && !ovl->admit_syn()) {
          if (!demux_checksum_ok(pkt, ih)) {
            ++stats_.bad_checksum;
          } else {
            ++stats_.syn_admission_deferred;
          }
          env_.pool.free_chain(pkt);
          co_return;
        }
        tp = tcp_lookup_listen(ih.dst, th.dst_port);
      }
      if (tp == nullptr) {
        // Checksum before concluding "no such port" (BSD verifies before the
        // PCB lookup): a bit flip in a port field must be charged to the
        // checksum, not mistaken for a connection-less segment.
        if (!demux_checksum_ok(pkt, ih)) {
          ++stats_.bad_checksum;
        } else if ((th.flags & kTcpSyn) != 0 && (th.flags & kTcpAck) == 0 &&
                   listen_service_exists(ih.dst, th.dst_port)) {
          // A clean SYN for a live listen service whose embryonic-socket
          // backlog is empty: the accept path is overflowing.
          ++stats_.listen_overflows;
          if (syn_cookies_) {
            // Answer statelessly: the cookie ISS remembers the handshake so
            // this stack doesn't have to. MSS defaults to the classic 536
            // when the SYN carried none.
            ++stats_.syn_cookies_sent;
            const std::uint16_t peer_mss = th.mss != 0 ? th.mss : 536;
            const std::uint32_t cookie =
                cookie_jar_.encode(ih.dst, th.dst_port, ih.src, th.src_port,
                                   peer_mss, env_.sim.now());
            const std::uint32_t ack = th.seq + 1;
            const std::uint16_t mss_echo =
                SynCookieJar::kMssTable[SynCookieJar::mss_class(peer_mss)];
            env_.pool.free_chain(pkt);
            co_await tcp_respond(ctx, ih.dst, ih.src, th.dst_port, th.src_port,
                                 cookie, ack, kTcpSyn | kTcpAck,
                                 /*win=*/0xffff, mss_echo);
            co_return;
          }
          // Without cookies the client's SYN retransmission recovers once
          // the backlog is re-armed.
        } else {
          ++stats_.no_port;
        }
        env_.pool.free_chain(pkt);
        co_return;
      }
      ++stats_.tcp_in;
      co_await tp->input(ctx, pkt, ih);
      co_return;
    }
    case kProtoUdp:
      ++stats_.udp_in;
      co_await udp_->input(ctx, pkt, ih);
      co_return;
    default: {
      auto it = raw_handlers_.find(proto);
      if (it != raw_handlers_.end()) {
        ++stats_.raw_in;
        it->second(pkt, ih);
        co_return;
      }
      ++stats_.no_proto;
      env_.pool.free_chain(pkt);
      co_return;
    }
  }
}

// Ifnet base implementation of the single-copy extension: only overridden by
// single-copy drivers.
sim::Task<void> Ifnet::copy_out(KernCtx, const mbuf::Wcab&, std::size_t, mem::Uio,
                                mbuf::DmaSync*) {
  throw std::logic_error("Ifnet(" + name() + "): copy_out on non-single-copy device");
}

sim::Task<void> Ifnet::copy_out_raw(KernCtx, const mbuf::Wcab&, std::size_t,
                                    std::span<std::byte>, mbuf::DmaSync*) {
  throw std::logic_error("Ifnet(" + name() +
                         "): copy_out_raw on non-single-copy device");
}

sim::Task<void> Ifnet::copy_in(KernCtx, mem::Uio, std::size_t,
                               std::function<void(mbuf::Wcab)>, std::size_t) {
  throw std::logic_error("Ifnet(" + name() + "): copy_in on non-single-copy device");
}

}  // namespace nectar::net
