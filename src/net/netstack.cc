#include "net/netstack.h"

#include <stdexcept>

#include "checksum/internet_checksum.h"
#include "mbuf/mbuf_ops.h"
#include "net/ip.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace nectar::net {

NetStack::NetStack(HostEnv env) : env_(env) {
  ip_ = std::make_unique<Ip>(*this);
  udp_ = std::make_unique<Udp>(*this);
}

NetStack::~NetStack() = default;

void NetStack::add_ifnet(Ifnet* ifp) {
  ifp->set_stack(this);
  ifnets_.push_back(ifp);
}

Ifnet* NetStack::find_ifnet(const std::string& name) const {
  for (Ifnet* ifp : ifnets_) {
    if (ifp->name() == name) return ifp;
  }
  return nullptr;
}

IpAddr NetStack::source_addr_for(IpAddr dst) const {
  auto r = routes_.lookup(dst);
  return r ? r->ifp->addr() : 0;
}

void NetStack::tcp_bind(const ConnKey& key, TcpConnection* tp) {
  if (!tcp_conns_.insert(key, tp))
    throw std::invalid_argument("netstack: tcp tuple in use");
  // First binding names the flow: the id rides every packet the connection
  // sends so the CAB's DMA arbiter can queue per flow.
  if (tp->flow_id() == 0) tp->set_flow_id(++next_flow_id_);
}

void NetStack::tcp_unbind(const ConnKey& key) { tcp_conns_.erase(key); }

void NetStack::tcp_listen(IpAddr laddr, std::uint16_t lport, TcpConnection* tp) {
  tcp_listeners_[std::make_pair(laddr, lport)].push_back(tp);
}

void NetStack::tcp_unlisten(IpAddr laddr, std::uint16_t lport, TcpConnection* tp) {
  const auto it = tcp_listeners_.find(std::make_pair(laddr, lport));
  if (it == tcp_listeners_.end()) return;
  std::erase(it->second, tp);
  if (it->second.empty()) tcp_listeners_.erase(it);
}

TcpConnection* NetStack::tcp_lookup(const ConnKey& key) const {
  return tcp_conns_.find(key);
}

TcpConnection* NetStack::tcp_lookup_listen(IpAddr laddr, std::uint16_t lport) const {
  auto it = tcp_listeners_.find(std::make_pair(laddr, lport));
  if (it != tcp_listeners_.end()) return it->second.front();
  // Wildcard listen (laddr 0).
  it = tcp_listeners_.find(std::make_pair(IpAddr{0}, lport));
  return it != tcp_listeners_.end() ? it->second.front() : nullptr;
}

void NetStack::listen_service_register(IpAddr laddr, std::uint16_t lport) {
  ++listen_services_[std::make_pair(laddr, lport)];
}

void NetStack::listen_service_unregister(IpAddr laddr, std::uint16_t lport) {
  const auto it = listen_services_.find(std::make_pair(laddr, lport));
  if (it == listen_services_.end()) return;
  if (--it->second <= 0) listen_services_.erase(it);
}

bool NetStack::listen_service_exists(IpAddr laddr, std::uint16_t lport) const {
  return listen_services_.contains(std::make_pair(laddr, lport)) ||
         listen_services_.contains(std::make_pair(IpAddr{0}, lport));
}

std::uint16_t NetStack::alloc_ephemeral_port() {
  for (int tries = 0; tries < 50000; ++tries) {
    const std::uint16_t p = next_ephemeral_++;
    if (next_ephemeral_ < 10000) next_ephemeral_ = 10000;
    bool used = false;
    tcp_conns_.for_each([&used, p](const ConnKey& key, TcpConnection*) {
      if (key.lport == p) used = true;
    });
    if (!used) return p;
  }
  throw std::runtime_error("netstack: ephemeral ports exhausted");
}

void NetStack::adopt_zombie(std::unique_ptr<TcpConnection> tp) {
  zombies_.push_back(std::move(tp));
}

void NetStack::set_raw_handler(std::uint8_t proto, RawHandler h) {
  if (!h) {
    raw_handlers_.erase(proto);
  } else {
    raw_handlers_[proto] = std::move(h);
  }
}

sim::Task<void> NetStack::transport_input(KernCtx ctx, std::uint8_t proto,
                                          mbuf::Mbuf* pkt, const IpHeader& ih) {
  switch (proto) {
    case kProtoTcp: {
      if (pkt->pkthdr.len < static_cast<int>(kTcpHdrLen)) {
        env_.pool.free_chain(pkt);
        co_return;
      }
      pkt = mbuf::m_pullup(pkt, static_cast<int>(kTcpHdrLen));
      // A header that does not parse (e.g. a corrupted data-offset nibble)
      // is charged to the checksum, same as tcp_input's malformed-segment
      // guard — it must not escape the demux as an exception.
      TcpHeader th;
      try {
        th = read_tcp_header(pkt->span());
      } catch (const std::exception&) {
        ++stats_.bad_checksum;
        env_.pool.free_chain(pkt);
        co_return;
      }
      const ConnKey key{ih.dst, th.dst_port, ih.src, th.src_port};
      TcpConnection* tp = tcp_lookup(key);
      if (tp == nullptr) tp = tcp_lookup_listen(ih.dst, th.dst_port);
      if (tp == nullptr) {
        // Checksum before concluding "no such port" (BSD verifies before the
        // PCB lookup): a bit flip in a port field must be charged to the
        // checksum, not mistaken for a connection-less segment.
        const auto seg_len = static_cast<std::uint16_t>(pkt->pkthdr.len);
        const std::uint32_t pseudo =
            transport_pseudo_sum(ih.src, ih.dst, kProtoTcp, seg_len);
        bool any_descriptor = false;
        for (const mbuf::Mbuf* m = pkt; m != nullptr; m = m->next) {
          if (m->is_descriptor()) any_descriptor = true;
        }
        bool bad = false;
        if (pkt->pkthdr.rx_hw_sum_valid) {
          bad = checksum::fold(pseudo + pkt->pkthdr.rx_hw_sum) != 0xffff;
        } else if (!any_descriptor) {
          bad = checksum::fold(pseudo + mbuf::in_cksum_range(
                                            pkt, 0, pkt->pkthdr.len)) != 0xffff;
        }
        if (bad) {
          ++stats_.bad_checksum;
        } else if ((th.flags & kTcpSyn) != 0 && (th.flags & kTcpAck) == 0 &&
                   listen_service_exists(ih.dst, th.dst_port)) {
          // A clean SYN for a live listen service whose embryonic-socket
          // backlog is empty: the accept path is overflowing. The client's
          // SYN retransmission recovers once the backlog is re-armed.
          ++stats_.listen_overflows;
        } else {
          ++stats_.no_port;
        }
        env_.pool.free_chain(pkt);
        co_return;
      }
      ++stats_.tcp_in;
      co_await tp->input(ctx, pkt, ih);
      co_return;
    }
    case kProtoUdp:
      ++stats_.udp_in;
      co_await udp_->input(ctx, pkt, ih);
      co_return;
    default: {
      auto it = raw_handlers_.find(proto);
      if (it != raw_handlers_.end()) {
        ++stats_.raw_in;
        it->second(pkt, ih);
        co_return;
      }
      ++stats_.no_proto;
      env_.pool.free_chain(pkt);
      co_return;
    }
  }
}

// Ifnet base implementation of the single-copy extension: only overridden by
// single-copy drivers.
sim::Task<void> Ifnet::copy_out(KernCtx, const mbuf::Wcab&, std::size_t, mem::Uio,
                                mbuf::DmaSync*) {
  throw std::logic_error("Ifnet(" + name() + "): copy_out on non-single-copy device");
}

sim::Task<void> Ifnet::copy_out_raw(KernCtx, const mbuf::Wcab&, std::size_t,
                                    std::span<std::byte>, mbuf::DmaSync*) {
  throw std::logic_error("Ifnet(" + name() +
                         "): copy_out_raw on non-single-copy device");
}

sim::Task<void> Ifnet::copy_in(KernCtx, mem::Uio, std::size_t,
                               std::function<void(mbuf::Wcab)>, std::size_t) {
  throw std::logic_error("Ifnet(" + name() + "): copy_in on non-single-copy device");
}

}  // namespace nectar::net
