// Network interface abstraction plus stack-wide cost model and execution
// context.
//
// §3: "the network device driver has to provide routines to transfer packets
// between host and network memory, copy in and copy out, besides the
// traditional input and output routines." Output is universal; the copy-in /
// copy-out extensions exist only on single-copy-capable drivers and are
// reached through capability checks, never downcasts in protocol code.
#pragma once

#include <cstdint>
#include <string>

#include "mbuf/mbuf_ops.h"
#include "sim/cpu.h"

namespace nectar::net {

class NetStack;

using IpAddr = std::uint32_t;

// Execution context for kernel work: which CPU account to charge and at what
// priority. Syscall paths carry the calling process's sys account at Normal
// priority; input paths carry the host's interrupt account.
struct KernCtx {
  sim::AccountId acct = 0;
  sim::Priority prio = sim::Priority::Kernel;
  // Transport flow the work is charged to (0 = unattributed). Single-copy
  // drivers tag their DMA requests with it so the CAB arbiter can queue per
  // flow; data staged before headers exist has no packet to carry the id.
  std::uint32_t flow = 0;
};

// Per-byte and per-operation CPU costs (the §7.3 decomposition). Per-byte
// costs are bandwidths; per-op costs are microseconds, and are calibrated so
// the per-packet total for 32 KB packets lands near the paper's measured
// ~300 us (see core/host_params.cc).
struct StackCosts {
  // Per-byte (sender copy: user->kernel buffers; checksum: one read pass).
  double copy_bw_bps = 43.75e6;   // 350 Mbit/s memory-memory copy
  double cksum_bw_bps = 78.75e6;  // 630 Mbit/s checksum read

  // Per-operation (us).
  double syscall_us = 25.0;         // user/kernel boundary crossing, per call
  double sosend_chunk_us = 20.0;    // socket-layer work per chunk appended
  double soreceive_chunk_us = 20.0; // socket-layer work per chunk delivered
  double tcp_output_us = 60.0;      // per segment sent
  double tcp_input_us = 60.0;       // per data segment received
  double tcp_ack_us = 50.0;         // per pure ACK processed
  double ip_output_us = 20.0;
  double ip_input_us = 20.0;
  double udp_output_us = 40.0;
  double udp_input_us = 40.0;
  double driver_issue_us = 45.0;    // build gather list, post SDMA/MDMA
  double intr_us = 30.0;            // interrupt entry/exit + device ack
  double wakeup_us = 15.0;          // scheduling a blocked process
};

enum IfCaps : unsigned {
  kCapSingleCopy = 0x1,  // accepts M_UIO data, produces M_WCAB (the CAB)
  kCapHwChecksum = 0x2,  // outboard transmit/receive checksum
};

class Ifnet {
 public:
  Ifnet(std::string name, IpAddr addr, std::size_t mtu, unsigned caps)
      : name_(std::move(name)), addr_(addr), mtu_(mtu), caps_(caps) {}
  virtual ~Ifnet() = default;
  Ifnet(const Ifnet&) = delete;
  Ifnet& operator=(const Ifnet&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] IpAddr addr() const noexcept { return addr_; }
  [[nodiscard]] std::size_t mtu() const noexcept { return mtu_; }
  [[nodiscard]] unsigned caps() const noexcept { return caps_; }
  [[nodiscard]] bool single_copy() const noexcept { return caps_ & kCapSingleCopy; }

  // Transmit a fully-formed IP packet (record: IP header mbuf first, data
  // following; data mbufs may be descriptors only if single_copy()). Drivers
  // without kCapSingleCopy must convert M_UIO to regular mbufs at their entry
  // point (§5, "a copy has merely been delayed"). Takes ownership.
  virtual sim::Task<void> output(KernCtx ctx, mbuf::Mbuf* pkt, IpAddr next_hop) = 0;

  // Copy-out routine (§3): move `len` bytes of outboard data starting at
  // `wcab_off` within the WCAB packet into host memory described by `dst`.
  // Only meaningful on single-copy interfaces; the base class throws.
  virtual sim::Task<void> copy_out(KernCtx ctx, const mbuf::Wcab& w,
                                   std::size_t wcab_off, mem::Uio dst,
                                   mbuf::DmaSync* sync);

  // Same, but into a kernel buffer (used by the §5 interop layer to convert
  // M_WCAB records into regular mbufs for in-kernel applications).
  virtual sim::Task<void> copy_out_raw(KernCtx ctx, const mbuf::Wcab& w,
                                       std::size_t wcab_off, std::span<std::byte> dst,
                                       mbuf::DmaSync* sync);

  // The outboard-buffer owner behind this interface (non-null only for
  // single-copy devices); lets upper layers find the driver that can copy a
  // given M_WCAB mbuf out.
  [[nodiscard]] virtual const mbuf::OutboardOwner* outboard_owner() const {
    return nullptr;
  }

  // Copy-in routine (§2.2, §3): stage one packet's worth of user data into a
  // fresh outboard buffer, reserving `header_space` bytes in front for the
  // headers the host will provide at (re)transmission time, and computing
  // the body checksum during the transfer. `done` receives the Wcab once the
  // data is outboard (one buffer reference passes to the callee). This is
  // how packetization decisions get made *before* the data leaves user space.
  // `seg_stride`, when non-zero, marks the staged data as a multi-MTU
  // super-segment: the device saves one body-checksum slice per stride bytes
  // so it can segment the packet at transmit time (large-segment offload).
  virtual sim::Task<void> copy_in(KernCtx ctx, mem::Uio data,
                                  std::size_t header_space,
                                  std::function<void(mbuf::Wcab)> done,
                                  std::size_t seg_stride = 0);

  // Bytes of header the transport+link layers prepend to a data packet out
  // this interface (0 for non-single-copy devices).
  [[nodiscard]] virtual std::size_t tx_header_space() const { return 0; }

  // How many wire MTUs the socket layer may stage into one outboard packet
  // (1 = no large-segment offload, or offload currently degraded).
  [[nodiscard]] virtual std::size_t tx_tso_segs() const { return 1; }

  // Arbitration class weight for `flow` under kWeightedFair DMA scheduling.
  // NetStack broadcasts a connection's weight when it assigns the flow id;
  // devices without per-flow arbitration ignore it.
  virtual void set_flow_weight(std::uint32_t flow, std::uint32_t weight) {
    (void)flow;
    (void)weight;
  }

  void set_stack(NetStack* s) noexcept { stack_ = s; }
  [[nodiscard]] NetStack* stack() const noexcept { return stack_; }

  struct IfStats {
    std::uint64_t opackets = 0;
    std::uint64_t obytes = 0;
    std::uint64_t ipackets = 0;
    std::uint64_t ibytes = 0;
    std::uint64_t oerrors = 0;
    std::uint64_t uio_converted = 0;  // M_UIO records copied at driver entry
  };
  IfStats if_stats;

 protected:
  NetStack* stack_ = nullptr;

  // Drivers may change capabilities at runtime (graceful degradation: a CAB
  // with a failed checksum unit or exhausted network memory drops back to the
  // host bounce path). Protocol code re-checks caps() per write / per
  // segment, so a change takes effect on the next packet.
  void set_caps(unsigned caps) noexcept { caps_ = caps; }

 private:
  std::string name_;
  IpAddr addr_;
  std::size_t mtu_;
  unsigned caps_;
};

}  // namespace nectar::net
