// IPv4 layer: output with routing and fragmentation, input with validation
// and reassembly.
//
// Per the paper's architecture (Figure 2), IP does routing and header work
// only — it never touches packet data, so descriptor mbufs (M_UIO / M_WCAB)
// flow through unchanged. Fragmentation slices the data chain with m_copym,
// which shares descriptors rather than reading them.
#pragma once

#include <cstdint>
#include <map>

#include "net/headers.h"
#include "net/ifnet.h"

namespace nectar::net {

class NetStack;

class Ip {
 public:
  explicit Ip(NetStack& stack) : stack_(stack) {}

  // Wrap `pkt` (transport header + data record, pkthdr.len set) in an IP
  // header and hand it to the routed interface, fragmenting if needed.
  // Takes ownership. Unroutable packets are dropped (counted).
  sim::Task<void> output(KernCtx ctx, mbuf::Mbuf* pkt, IpAddr src, IpAddr dst,
                         std::uint8_t proto, bool dont_fragment = false);

  // Input from a driver: record beginning at the IP header. Takes ownership.
  sim::Task<void> input(KernCtx ctx, mbuf::Mbuf* pkt, Ifnet* rcvif);

  struct Stats {
    std::uint64_t opackets = 0;
    std::uint64_t ofragments = 0;
    std::uint64_t ipackets = 0;
    std::uint64_t reassembled = 0;
    std::uint64_t bad_header = 0;
    std::uint64_t bad_checksum = 0;
    std::uint64_t no_route = 0;
    std::uint64_t frag_timeouts = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t oversize = 0;  // datagrams beyond the IPv4 65535-byte limit
    std::uint64_t ecn_marked = 0;  // packets CE-marked by overload policy
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // Reassembly bookkeeping (ip_frag.cc).
  struct FragQueue {
    std::map<std::uint16_t, mbuf::Mbuf*> frags;  // frag_offset(8B units) -> record
    std::size_t total_len = 0;                   // set when last fragment seen
    sim::TimerHandle timeout;
  };

 private:
  friend struct IpFragOps;  // fragmentation/reassembly (ip_frag.cc)
  // True if the destination is one of our interface addresses.
  [[nodiscard]] bool local_addr(IpAddr a) const;

  sim::Task<void> deliver(KernCtx ctx, mbuf::Mbuf* pkt, const IpHeader& ih);

  NetStack& stack_;
  std::uint16_t next_id_ = 1;
  std::map<std::tuple<IpAddr, IpAddr, std::uint8_t, std::uint16_t>, FragQueue> reasm_;
  Stats stats_;
};

// Internal: fragmentation/reassembly entry points, defined in ip_frag.cc.
struct IpFragOps {
  static sim::Task<void> fragment(KernCtx ctx, Ip& ip, NetStack& stack,
                                  mbuf::Mbuf* pkt, IpHeader proto_hdr, Ifnet* ifp,
                                  IpAddr next_hop);
  static sim::Task<void> reassemble(KernCtx ctx, Ip& ip, NetStack& stack,
                                    mbuf::Mbuf* pkt, const IpHeader& ih);
};

}  // namespace nectar::net
