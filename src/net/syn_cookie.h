// Stateless SYN cookies: encode enough of a half-open connection into the
// 32-bit initial send sequence number that the listen path can forget the
// SYN entirely and reconstruct the connection from the handshake-completing
// ACK. An exhausted backlog then degrades to O(1)-memory cookie handling
// instead of dropping (or remembering) every SYN.
//
// Layout of the cookie ISS (classic Bernstein scheme adapted to sim time):
//
//   [31:29] time counter (sim-time / kWindow, mod 8)
//   [28:26] MSS class index (kMssTable)
//   [25:0]  MAC over (secret, 4-tuple, counter, mss class)
//
// Validation recovers the counter by matching the cookie's low 3 counter
// bits against the current window and the kMaxAge preceding ones, then
// recomputes the MAC. A stale cookie (older than kMaxAge windows) or any
// bit flip fails the MAC and is rejected; the 26-bit MAC means a blind
// attacker needs ~2^25 ACKs per forged connection, which the flood test
// treats as the acceptance bar for "never crashes, never allocates".
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace nectar::net {

class SynCookieJar {
 public:
  // Deterministic default secret: reproducible runs are a feature here, and
  // the simulated adversary doesn't key-recover. A real deployment would
  // seed this per boot.
  explicit SynCookieJar(std::uint64_t secret = 0x5eedc00c1e5a1ad5ull)
      : secret_(secret) {}

  // Cookie validity window granularity and maximum accepted age. A cookie
  // minted in window W validates while now is in windows [W, W + kMaxAge] —
  // at least 16 and at most 24 seconds. That must cover more than the first
  // SYN|ACK RTT: when the accept backlog is still exhausted at ACK time the
  // completion is carried by the client's *data* retransmissions, whose
  // backoff (1, 2, 4, 8 s...) has to land inside the validity window once a
  // listener re-arms. Linux sizes its cookie timestamp the same way (64 s
  // granularity, two counters).
  static constexpr sim::Duration kWindow = 8 * sim::kSecond;
  static constexpr int kMaxAge = 2;

  // Eight encodable MSS classes (3 bits). Values match the simulated link
  // MTUs in use: 536 default, 1460 ethernet, then power-of-two jumbo/HIPPI
  // steps. encode() rounds the peer's advertised MSS *down* to a class so
  // the reconstructed connection never sends oversized segments.
  static constexpr std::uint16_t kMssTable[8] = {536,  1460, 2048,  4096,
                                                 8192, 16384, 32768, 65495};

  [[nodiscard]] std::uint32_t encode(std::uint32_t laddr, std::uint16_t lport,
                                     std::uint32_t faddr, std::uint16_t fport,
                                     std::uint16_t peer_mss,
                                     sim::Time now) const noexcept;

  struct Decoded {
    bool valid = false;
    std::uint16_t mss = 0;
  };
  [[nodiscard]] Decoded decode(std::uint32_t laddr, std::uint16_t lport,
                               std::uint32_t faddr, std::uint16_t fport,
                               std::uint32_t cookie,
                               sim::Time now) const noexcept;

  // Largest class index whose MSS does not exceed `mss` (0 if below all).
  [[nodiscard]] static int mss_class(std::uint16_t mss) noexcept;

 private:
  [[nodiscard]] std::uint32_t mac(std::uint32_t laddr, std::uint16_t lport,
                                  std::uint32_t faddr, std::uint16_t fport,
                                  std::uint64_t counter,
                                  std::uint32_t mss_idx) const noexcept;

  std::uint64_t secret_;
};

}  // namespace nectar::net
