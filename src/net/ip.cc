#include "net/ip.h"

#include "net/netstack.h"
#include "overload/overload.h"

namespace nectar::net {

using mbuf::Mbuf;

bool Ip::local_addr(IpAddr a) const {
  for (const Ifnet* ifp : stack_.ifnets()) {
    if (ifp->addr() == a) return true;
  }
  return false;
}

sim::Task<void> Ip::output(KernCtx ctx, Mbuf* pkt, IpAddr src, IpAddr dst,
                           std::uint8_t proto, bool dont_fragment) {
  auto& env = stack_.env();
  co_await env.cpu.run(sim::usec(stack_.costs().ip_output_us), ctx.acct, ctx.prio);

  auto route = stack_.routes().lookup(dst);
  if (!route) {
    ++stats_.no_route;
    env.pool.free_chain(pkt);
    co_return;
  }
  // Large-segment offload: the record is a multi-MTU super-segment that the
  // adaptor cuts into wire segments at MDMA time. It bypasses the IPv4 size
  // limit and fragmentation below — no datagram that size ever hits the wire;
  // the header written here is a per-segment template the MDMA rewrites.
  const bool tso =
      pkt->has_pkthdr() && pkt->pkthdr.csum_tx.offload &&
      pkt->pkthdr.csum_tx.tso_seg_payload > 0;
  if (!tso && kIpHdrLen + static_cast<std::size_t>(pkt->pkthdr.len) > 0xffff) {
    // IPv4 limit: 16-bit total length / 13-bit fragment offset.
    ++stats_.oversize;
    env.pool.free_chain(pkt);
    co_return;
  }

  IpHeader ih;
  ih.id = next_id_++;
  ih.proto = proto;
  ih.src = src;
  ih.dst = dst;
  ih.dont_fragment = dont_fragment;
  // ECN backpressure: while a watermark is tripped, departing packets carry
  // CE so receivers echo congestion back to senders — load sheds at the
  // source instead of as queue drops. Inert without an OverloadManager.
  if (auto* ovl = env.overload; ovl != nullptr && ovl->mark_ecn()) {
    ih.ecn = kEcnCe;
    ++stats_.ecn_marked;
  }

  const std::size_t payload = static_cast<std::size_t>(pkt->pkthdr.len);
  if (tso || kIpHdrLen + payload <= route->ifp->mtu()) {
    ih.total_len = static_cast<std::uint16_t>(
        std::min<std::size_t>(kIpHdrLen + payload, 0xffff));
    Mbuf* m = mbuf::m_prepend(pkt, static_cast<int>(kIpHdrLen));
    write_ip_header({m->data(), kIpHdrLen}, ih);
    ++stats_.opackets;
    co_await route->ifp->output(ctx, m, route->next_hop);
    co_return;
  }

  if (dont_fragment) {
    ++stats_.no_route;  // would need ICMP frag-needed; count and drop
    env.pool.free_chain(pkt);
    co_return;
  }
  co_await IpFragOps::fragment(ctx, *this, stack_, pkt, ih, route->ifp,
                               route->next_hop);
}

sim::Task<void> Ip::input(KernCtx ctx, Mbuf* pkt, Ifnet* rcvif) {
  auto& env = stack_.env();
  co_await env.cpu.run(sim::usec(stack_.costs().ip_input_us), ctx.acct, ctx.prio);

  ++stats_.ipackets;
  Mbuf* m = mbuf::m_pullup(pkt, static_cast<int>(kIpHdrLen));
  IpHeader ih;
  try {
    ih = read_ip_header({m->data(), static_cast<std::size_t>(m->len())});
  } catch (const std::exception&) {
    ++stats_.bad_header;
    env.pool.free_chain(m);
    co_return;
  }
  if (!verify_ip_checksum({m->data(), kIpHdrLen})) {
    ++stats_.bad_checksum;
    env.pool.free_chain(m);
    co_return;
  }
  if (ih.total_len > mbuf::m_length(m)) {
    ++stats_.bad_header;
    env.pool.free_chain(m);
    co_return;
  }
  m->pkthdr.rcvif = rcvif;

  if (!local_addr(ih.dst)) {
    // Forwarding between interfaces — one of the paper's reasons a single
    // stack is required (§4.1). TTL and checksum are updated incrementally.
    if (ih.ttl <= 1) {
      ++stats_.bad_header;
      env.pool.free_chain(m);
      co_return;
    }
    auto route = stack_.routes().lookup(ih.dst);
    if (!route || route->ifp == rcvif) {
      ++stats_.no_route;
      env.pool.free_chain(m);
      co_return;
    }
    --ih.ttl;
    // Trim any link padding beyond total_len, rewrite header in place.
    if (mbuf::m_length(m) > ih.total_len)
      mbuf::m_adj(m, -(mbuf::m_length(m) - static_cast<int>(ih.total_len)));
    write_ip_header({m->data(), kIpHdrLen}, ih);
    ++stats_.forwarded;
    co_await route->ifp->output(ctx, m, route->next_hop);
    co_return;
  }

  // Trim link-layer padding (anything past total_len).
  if (mbuf::m_length(m) > ih.total_len)
    mbuf::m_adj(m, -(mbuf::m_length(m) - static_cast<int>(ih.total_len)));

  if (ih.more_fragments || ih.frag_offset != 0) {
    co_await IpFragOps::reassemble(ctx, *this, stack_, m, ih);
    co_return;
  }

  co_await deliver(ctx, m, ih);
}

sim::Task<void> Ip::deliver(KernCtx ctx, Mbuf* pkt, const IpHeader& ih) {
  mbuf::m_adj(pkt, static_cast<int>(kIpHdrLen));  // strip IP header
  co_await stack_.transport_input(ctx, ih.proto, pkt, ih);
}

}  // namespace nectar::net
