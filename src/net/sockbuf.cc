#include "net/sockbuf.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace nectar::net {

using mbuf::Mbuf;
using mbuf::MbufType;

Sockbuf::~Sockbuf() {
  if (head_ != nullptr && pool_ != nullptr) pool_->free_chain(head_);
}

void Sockbuf::append(Mbuf* chain) {
  if (chain == nullptr) return;
  if (pool_ == nullptr) pool_ = &chain->pool();

  // Normalize away zero-length mbufs (m_adj header stripping leaves them,
  // BSD-style); they carry no stream bytes and would wedge byte-walking
  // consumers.
  Mbuf** link = &chain;
  while (*link != nullptr) {
    if ((*link)->len() == 0) {
      Mbuf* dead = *link;
      *link = dead->next;
      dead->next = nullptr;
      pool_->free_one(dead);
    } else {
      link = &(*link)->next;
    }
  }
  if (chain == nullptr) return;

  if (tail_ == nullptr) {
    head_ = chain;
  } else {
    tail_->next = chain;
  }
  for (Mbuf* m = chain; m != nullptr; m = m->next) {
    cc_ += static_cast<std::size_t>(m->len());
    if (m->type() == MbufType::kUio) uio_cc_ += static_cast<std::size_t>(m->len());
    tail_ = m;
  }
}

void Sockbuf::drop(std::size_t n) {
  if (n > cc_) throw std::logic_error("Sockbuf::drop: beyond contents");
  base_pos_ += n;
  cc_ -= n;
  while (n > 0) {
    assert(head_ != nullptr);
    const auto mlen = static_cast<std::size_t>(head_->len());
    if (n >= mlen) {
      if (head_->type() == MbufType::kUio) uio_cc_ -= mlen;
      Mbuf* dead = head_;
      head_ = head_->next;
      dead->next = nullptr;
      pool_->free_one(dead);
      n -= mlen;
    } else {
      if (head_->type() == MbufType::kUio) uio_cc_ -= n;
      head_->trim_front(n);
      n = 0;
    }
  }
  if (head_ == nullptr) tail_ = nullptr;
}

Mbuf* Sockbuf::copy_range(std::uint64_t pos, std::size_t len) const {
  if (pos < base_pos_ || pos + len > end_pos())
    throw std::out_of_range("Sockbuf::copy_range: outside buffered stream");
  return mbuf::m_copym(head_, static_cast<int>(pos - base_pos_),
                       static_cast<int>(len));
}

Sockbuf::Cursor Sockbuf::seek(std::uint64_t pos) {
  if (pos < base_pos_ || pos > end_pos())
    throw std::out_of_range("Sockbuf::seek: outside buffered stream");
  std::size_t off = pos - base_pos_;
  Mbuf** link = &head_;
  Mbuf* m = head_;
  while (m != nullptr && off >= static_cast<std::size_t>(m->len())) {
    // Stop *within* the mbuf when possible; at a boundary, land at the start
    // of the next mbuf.
    off -= static_cast<std::size_t>(m->len());
    link = &m->next;
    m = m->next;
  }
  return Cursor{m, link, off};
}

MbufType Sockbuf::type_at(std::uint64_t pos) const {
  auto cur = const_cast<Sockbuf*>(this)->seek(pos);
  if (cur.m == nullptr) throw std::out_of_range("Sockbuf::type_at: at end");
  return cur.m->type();
}

std::size_t Sockbuf::homogeneous_run(std::uint64_t pos, std::size_t maxlen) const {
  auto cur = const_cast<Sockbuf*>(this)->seek(pos);
  if (cur.m == nullptr) return 0;
  const MbufType t = cur.m->type();
  std::size_t run = 0;
  std::size_t off = cur.off;
  for (Mbuf* m = cur.m; m != nullptr && run < maxlen; m = m->next) {
    if (m->type() != t) break;
    run += static_cast<std::size_t>(m->len()) - off;
    off = 0;
  }
  return run < maxlen ? run : maxlen;
}

std::size_t Sockbuf::mbuf_run(std::uint64_t pos, std::size_t maxlen) const {
  auto cur = const_cast<Sockbuf*>(this)->seek(pos);
  if (cur.m == nullptr) return 0;
  const std::size_t rest = static_cast<std::size_t>(cur.m->len()) - cur.off;
  return rest < maxlen ? rest : maxlen;
}

void Sockbuf::convert_to_wcab(std::uint64_t pos, std::size_t len, const mbuf::Wcab& w,
                              const mbuf::UioWcabHdr& hdr) {
  if (len == 0) return;
  if (pos < base_pos_ || pos + len > end_pos())
    throw std::out_of_range("Sockbuf::convert_to_wcab: outside buffered stream");

  // Split at the front boundary if it falls inside an mbuf.
  Cursor front = seek(pos);
  assert(front.m != nullptr);
  if (front.off != 0) {
    Mbuf* m = front.m;
    if (m->type() != MbufType::kUio)
      throw std::logic_error("Sockbuf::convert_to_wcab: range not UIO data");
    // Split m into [0, off) and [off, ...).
    mem::Uio tail_uio = m->uio().slice(front.off, m->len() - front.off);
    Mbuf* tail_part = pool_->get_uio(std::move(tail_uio),
                                     static_cast<std::size_t>(m->len()) - front.off,
                                     m->uw_hdr(), false);
    tail_part->next = m->next;
    m->trim_back(static_cast<std::size_t>(m->len()) - front.off);
    m->next = tail_part;
    if (tail_ == m) tail_ = tail_part;
    front.m = tail_part;
    front.link = &m->next;
    front.off = 0;
  }

  // Walk and unlink exactly `len` bytes of UIO mbufs.
  Mbuf** link = front.link;
  Mbuf* m = front.m;
  std::size_t remaining = len;
  while (remaining > 0) {
    assert(m != nullptr);
    if (m->type() != MbufType::kUio)
      throw std::logic_error("Sockbuf::convert_to_wcab: range not UIO data");
    const auto mlen = static_cast<std::size_t>(m->len());
    if (mlen > remaining) {
      // Back boundary inside this mbuf: trim its front, keep it.
      m->trim_front(remaining);
      uio_cc_ -= remaining;
      remaining = 0;
      break;
    }
    Mbuf* dead = m;
    m = m->next;
    *link = m;
    dead->next = nullptr;
    if (tail_ == dead) tail_ = (m == nullptr) ? nullptr : tail_;
    uio_cc_ -= mlen;
    remaining -= mlen;
    pool_->free_one(dead);
  }

  // Insert the WCAB mbuf where the UIO data was.
  Mbuf* wm = pool_->get_wcab(w, len, hdr, false);
  wm->next = *link;
  *link = wm;
  if (wm->next == nullptr) tail_ = wm;
  recount();
}

void Sockbuf::recount() noexcept {
  // Re-derive tail_ defensively after structural surgery (cheap relative to
  // DMA completion frequency; chains are short).
  if (head_ == nullptr) {
    tail_ = nullptr;
    return;
  }
  Mbuf* m = head_;
  while (m->next != nullptr) m = m->next;
  tail_ = m;
}

}  // namespace nectar::net
