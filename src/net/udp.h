// UDP with optional outboard checksumming.
//
// Checksum policy out a hardware-checksum interface mirrors TCP's seed
// mechanism. One UDP-specific rule (§4.3): the hardware always produces a
// ones-complement sum, and a transmitted UDP checksum of 0 means "no
// checksum" — but as the paper argues, a computed checksum can only fold to
// 0 if every summed word is 0, impossible with non-zero pseudo-header
// addresses, so no 0 -> 0xffff substitution is ever needed (tests verify the
// argument).
//
// Datagrams larger than the path MTU fragment at IP. A fragmented datagram's
// checksum cannot be computed per-fragment by the CAB, so descriptor-backed
// (M_UIO) datagrams that would fragment are sent with the checksum disabled;
// readable (regular-mbuf) ones fall back to the software checksum.
#pragma once

#include <map>

#include "net/headers.h"
#include "net/netstack.h"

namespace nectar::net {

// How the socket layer receives datagrams.
class UdpSocketIface {
 public:
  virtual ~UdpSocketIface() = default;
  // `data` is the payload record (UDP header stripped). Ownership passes.
  virtual void udp_deliver(mbuf::Mbuf* data, IpAddr src, std::uint16_t sport) = 0;
};

class Udp {
 public:
  explicit Udp(NetStack& stack) : stack_(stack) {}

  void bind(std::uint16_t port, UdpSocketIface* s);
  void unbind(std::uint16_t port);

  // Send one datagram; `data` is the payload record (ownership passes).
  sim::Task<void> output(KernCtx ctx, mbuf::Mbuf* data, IpAddr src,
                         std::uint16_t sport, IpAddr dst, std::uint16_t dport,
                         bool checksum_enable = true);

  // From NetStack demux; `pkt` starts at the UDP header. Takes ownership.
  sim::Task<void> input(KernCtx ctx, mbuf::Mbuf* pkt, const IpHeader& ih);

  struct Stats {
    std::uint64_t out_datagrams = 0;
    std::uint64_t in_datagrams = 0;
    std::uint64_t bad_checksum = 0;
    std::uint64_t no_port = 0;
    std::uint64_t unverifiable = 0;  // nonzero csum over unreadable data
    std::uint64_t hw_csum_tx = 0;
    std::uint64_t sw_csum_tx = 0;
    std::uint64_t nocsum_tx = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  NetStack& stack_;
  std::map<std::uint16_t, UdpSocketIface*> ports_;
  Stats stats_;
};

}  // namespace nectar::net
