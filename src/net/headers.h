// IPv4 / TCP / UDP wire headers.
//
// Headers are built and parsed directly from byte arrays in network byte
// order via wire.h helpers — no struct punning. Sizes:
//   IP  20 bytes (no options used by this stack)
//   TCP 20 bytes + options (MSS and window-scale on SYN only)
//   UDP 8 bytes
// With the 60-byte HIPPI framing header this puts the start of the transport
// header at byte 80 = word 20 of the frame, the CAB's receive checksum
// offset (§4.3).
#pragma once

#include <cstdint>
#include <span>

#include "checksum/internet_checksum.h"

namespace nectar::net {

using IpAddr = std::uint32_t;  // host-order value of the network-order word

inline constexpr std::size_t kIpHdrLen = 20;
inline constexpr std::size_t kTcpHdrLen = 20;   // without options
inline constexpr std::size_t kUdpHdrLen = 8;

inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

// ---------------------------------------------------------------------- IP

// ECN codepoints, TOS byte bits 0-1 (RFC 3168 field layout).
inline constexpr std::uint8_t kEcnNotEct = 0b00;
inline constexpr std::uint8_t kEcnCe = 0b11;  // congestion experienced

struct IpHeader {
  std::uint16_t total_len = 0;  // IP header + payload
  std::uint16_t id = 0;
  std::uint8_t ecn = 0;  // kEcnNotEct / kEcnCe (TOS bits 0-1)
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t frag_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t proto = 0;
  IpAddr src = 0;
  IpAddr dst = 0;
};

// Serialize into out[0..20), computing the header checksum.
void write_ip_header(std::span<std::byte> out, const IpHeader& h);

// Parse; throws std::runtime_error on bad version/length. Does NOT verify
// the header checksum (use verify_ip_checksum, so tests can corrupt).
IpHeader read_ip_header(std::span<const std::byte> in);

[[nodiscard]] bool verify_ip_checksum(std::span<const std::byte> hdr) noexcept;

// --------------------------------------------------------------------- TCP

enum TcpFlags : std::uint8_t {
  kTcpFin = 0x01,
  kTcpSyn = 0x02,
  kTcpRst = 0x04,
  kTcpPsh = 0x08,
  kTcpAck = 0x10,
  kTcpEce = 0x40,  // ECN echo: receiver saw a CE-marked segment
  kTcpCwr = 0x80,  // sender reduced its window in response to ECE
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t win = 0;       // unscaled wire value
  std::uint16_t checksum = 0;  // as read; writing leaves the field to caller
  // Options (SYN only; absent when zero/false).
  std::uint16_t mss = 0;
  bool has_ws = false;
  std::uint8_t ws = 0;
  std::uint8_t data_off_words = 5;  // filled by read; derived on write
};

// Bytes of options this header will carry (0, or padded options on SYN).
[[nodiscard]] std::size_t tcp_options_len(const TcpHeader& h) noexcept;

// Serialize into out[0 .. 20+options). The checksum field is written as
// h.checksum (callers store either a software checksum or an outboard seed).
void write_tcp_header(std::span<std::byte> out, const TcpHeader& h);

TcpHeader read_tcp_header(std::span<const std::byte> in);

// --------------------------------------------------------------------- UDP

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + data
  std::uint16_t checksum = 0;
};

void write_udp_header(std::span<std::byte> out, const UdpHeader& h);
UdpHeader read_udp_header(std::span<const std::byte> in);

// Pseudo-header sum for a segment (§4.3 "the host is responsible for the
// fields in the header (the TCP header and pseudo-header)").
[[nodiscard]] std::uint32_t transport_pseudo_sum(IpAddr src, IpAddr dst,
                                                 std::uint8_t proto,
                                                 std::uint16_t seg_len) noexcept;

}  // namespace nectar::net
