// TCP input: checksum verification (outboard or software), ACK processing,
// in-order delivery with reassembly, and the connection state machine.
#include <cassert>

#include "net/tcp.h"
#include "telemetry/telemetry.h"

namespace nectar::net {

using mbuf::Mbuf;

namespace {
std::uint8_t scale_for(std::size_t bufsize) {
  std::uint8_t s = 0;
  while (s < 14 && (0xffffULL << s) < bufsize) ++s;
  return s;
}
}  // namespace

sim::Task<bool> TcpConnection::verify_checksum(KernCtx ctx, Mbuf* pkt,
                                               const IpHeader& ih,
                                               std::size_t seg_len) {
  auto& env = stack_.env();
  // A coalesced record (receive offload): the driver verified every merged
  // wire segment's hardware checksum before building it, and the merged
  // record has no single wire checksum of its own to re-derive.
  if (pkt->pkthdr.rx_csum_verified) {
    ++stats_.hw_csum_rx;
    co_return true;
  }
  // A record containing descriptor mbufs cannot be read by the host; the
  // hardware sum is the only option there regardless of policy.
  bool any_descriptor = false;
  for (const Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->is_descriptor()) any_descriptor = true;
  }
  const std::uint32_t pseudo = transport_pseudo_sum(
      ih.src, ih.dst, kProtoTcp, static_cast<std::uint16_t>(seg_len));
  if (pkt->pkthdr.rx_hw_sum_valid && (par_.csum_offload || any_descriptor)) {
    // §4.3: "The checksum calculation routine of TCP/UDP adjusts the checksum
    // calculated by the CAB by adding ... the fields of the ... pseudo-header,
    // and then compares it" — one constant-cost add, no data touched.
    ++stats_.hw_csum_rx;
    co_return checksum::fold(pseudo + pkt->pkthdr.rx_hw_sum) == 0xffff;
  }
  ++stats_.sw_csum_rx;
  co_await env.cpu.run(sim::transfer_time(static_cast<std::int64_t>(seg_len),
                                          stack_.costs().cksum_bw_bps),
                       ctx.acct, ctx.prio);
  const std::uint32_t sum =
      pseudo + mbuf::in_cksum_range(pkt, 0, static_cast<int>(seg_len));
  co_return checksum::fold(sum) == 0xffff;
}

sim::Task<void> TcpConnection::input_locked(KernCtx ctx, Mbuf* pkt,
                                            const IpHeader& ih) {
  auto& env = stack_.env();
  const auto seg_len = static_cast<std::size_t>(pkt->pkthdr.len);

  // Pull the header (plus options) contiguous; malformed segments drop.
  TcpHeader th;
  std::size_t hlen;
  try {
    if (seg_len < kTcpHdrLen) throw std::runtime_error("short segment");
    pkt = mbuf::m_pullup(pkt, static_cast<int>(kTcpHdrLen));
    th = read_tcp_header(pkt->span());
    hlen = static_cast<std::size_t>(th.data_off_words) * 4;
    if (hlen > seg_len) throw std::runtime_error("bad data offset");
    if (hlen > kTcpHdrLen) {
      pkt = mbuf::m_pullup(pkt, static_cast<int>(hlen));
      th = read_tcp_header(pkt->span());
    }
  } catch (const std::exception&) {
    ++stats_.bad_checksum;
    env.pool.free_chain(pkt);
    co_return;
  }
  const std::size_t data_len = seg_len - hlen;
  const bool fin = (th.flags & kTcpFin) != 0;

  ++stats_.segs_in;
  const bool is_data = data_len > 0 || (th.flags & (kTcpSyn | kTcpFin));
  co_await env.cpu.run(
      sim::usec(is_data ? stack_.costs().tcp_input_us : stack_.costs().tcp_ack_us),
      ctx.acct, ctx.prio);
  if (!is_data) ++stats_.acks_in;

  if (!co_await verify_checksum(ctx, pkt, ih, seg_len)) {
    ++stats_.bad_checksum;
    env.pool.free_chain(pkt);
    co_return;
  }

  if (th.flags & kTcpRst) {
    env.pool.free_chain(pkt);
    enter_state(TcpState::kClosed);
    teardown();
    cb_->notify_readable();  // readers observe the reset as EOF
    cb_->notify_writable();
    co_return;
  }

  // ECN receiver half (RFC 3168 shape): a CE-marked data segment latches the
  // echo — every ACK carries ECE until the sender's CWR confirms it reduced.
  // Only checksum-verified segments get here, so corruption can't latch.
  if (ih.ecn == kEcnCe && data_len > 0) {
    ++stats_.ecn_ce_rcvd;
    ecn_echo_ = true;
  }
  if ((th.flags & kTcpCwr) != 0) ecn_echo_ = false;

  switch (state_) {
    case TcpState::kListen: {
      if (!(th.flags & kTcpSyn) || (th.flags & kTcpAck)) {
        env.pool.free_chain(pkt);
        co_return;
      }
      // Complete the tuple and move to the full-connection demux.
      stack_.tcp_unlisten(key_.laddr, key_.lport, this);
      listening_ = false;
      key_.laddr = ih.dst;
      key_.faddr = ih.src;
      key_.fport = th.src_port;
      stack_.tcp_bind(key_, this);
      bound_ = true;

      cache_route();
      mss_ = static_cast<std::uint16_t>(
          (route_if_ != nullptr ? route_if_->mtu() : 1500) - kIpHdrLen - kTcpHdrLen);
      if (th.mss != 0) mss_ = std::min(mss_, th.mss);
      if (th.has_ws && par_.window_scaling) {
        snd_scale_ = th.ws;
        rcv_scale_ = scale_for(par_.rcvbuf);
      } else {
        snd_scale_ = rcv_scale_ = 0;
      }
      irs_ = th.seq;
      rcv_nxt_ = th.seq + 1;
      iss_ = par_.iss != 0 ? par_.iss : (th.seq ^ 0x5ca1ab1eu) | 1;
      snd_una_ = snd_nxt_ = snd_max_ = iss_;
      cwnd_ = mss_;
      snd_wnd_ = th.win;  // unscaled in SYN
      enter_state(TcpState::kSynReceived);
      env.pool.free_chain(pkt);
      co_await send_control(ctx, iss_, kTcpSyn | kTcpAck);
      snd_nxt_ = snd_max_ = iss_ + 1;
      start_rexmt_timer();
      co_return;
    }

    case TcpState::kSynSent: {
      if (!(th.flags & kTcpSyn)) {
        env.pool.free_chain(pkt);
        co_return;
      }
      irs_ = th.seq;
      rcv_nxt_ = th.seq + 1;
      if (th.mss != 0) mss_ = std::min(mss_, th.mss);
      if (th.has_ws && par_.window_scaling) {
        snd_scale_ = th.ws;
      } else {
        snd_scale_ = rcv_scale_ = 0;
      }
      if (th.flags & kTcpAck) {
        if (th.ack != iss_ + 1) {  // bogus
          env.pool.free_chain(pkt);
          co_return;
        }
        snd_una_ = th.ack;
        stop_rexmt_timer();
        snd_wnd_ = th.win;  // SYN segments carry unscaled windows
        enter_state(TcpState::kEstablished);
        env.pool.free_chain(pkt);
        co_await send_control(ctx, snd_nxt_, kTcpAck);
      } else {
        // Simultaneous open.
        enter_state(TcpState::kSynReceived);
        env.pool.free_chain(pkt);
        co_await send_control(ctx, iss_, kTcpSyn | kTcpAck);
      }
      co_return;
    }

    case TcpState::kClosed:
      env.pool.free_chain(pkt);
      co_return;

    default:
      break;
  }

  // SYN_RCVD: the ACK of our SYN completes establishment; fall through to
  // normal processing for any piggybacked data.
  if (state_ == TcpState::kSynReceived && (th.flags & kTcpAck) &&
      th.ack == iss_ + 1) {
    snd_una_ = th.ack;
    snd_wnd_ = static_cast<std::uint32_t>(th.win) << snd_scale_;
    stop_rexmt_timer();
    enter_state(TcpState::kEstablished);
  }

  if (th.flags & kTcpAck) co_await process_ack(ctx, th);

  if (data_len > 0 || fin) {
    mbuf::m_adj(pkt, static_cast<int>(hlen));  // strip TCP header
    co_await accept_data(ctx, pkt, th, data_len, fin);
  } else {
    env.pool.free_chain(pkt);
    // A zero-length segment outside the window is a window probe: answer
    // with an ACK carrying the current window (RFC 793 unacceptable-segment
    // rule).
    if (th.seq != rcv_nxt_ && state_ == TcpState::kEstablished)
      co_await send_control(ctx, snd_nxt_, kTcpAck);
  }
}

sim::Task<void> TcpConnection::process_ack(KernCtx ctx, const TcpHeader& th) {
  if (state_ == TcpState::kClosed) co_return;  // orphaned while suspended

  // ECN sender half: an ECE-bearing ACK halves the effective window, at
  // most once per window of data — ACKs fenced below ecn_cwr_seq_ report
  // the same congestion event. CWR rides the next data segment out.
  if ((th.flags & kTcpEce) != 0) {
    ++stats_.ecn_ece_rcvd;
    if (!ecn_cut_ever_ || seq_gt(th.ack, ecn_cwr_seq_)) {
      ecn_cut_ever_ = true;
      ecn_cwr_seq_ = snd_max_;
      ++stats_.ecn_cwnd_cuts;
      ssthresh_ = std::max<std::uint32_t>(2u * mss_, cwnd_ / 2);
      cwnd_ = ssthresh_;
      cwr_pending_ = true;
    }
  }

  // Window update from the most recent acceptable segment.
  const std::uint32_t wnd = static_cast<std::uint32_t>(th.win) << snd_scale_;

  if (!seq_gt(th.ack, snd_una_)) {
    // Duplicate or old ACK — possibly a pure window update from a receiver
    // whose application drained its buffer. A grown window must restart the
    // sender: nothing else will (this is the receiver-driven update that
    // pairs with TcpConnection::window_update on the other side).
    const std::uint32_t old_wnd = snd_wnd_;
    if (th.ack == snd_una_ && snd_una_ != snd_max_ && wnd == snd_wnd_) {
      ++stats_.dup_acks;
      ++dupacks_;
      if (par_.fast_retransmit && dupacks_ == 3) {
        ++stats_.fast_rexmt;
        ssthresh_ = std::max<std::uint32_t>(2u * mss_, (snd_max_ - snd_una_) / 2);
        cwnd_ = ssthresh_ + 3u * mss_;
        const std::uint32_t saved_nxt = snd_nxt_;
        snd_nxt_ = snd_una_;
        Sockbuf& sb = cb_->snd();
        const std::uint64_t pos = seq_to_pos(snd_una_);
        const auto sb_avail = static_cast<std::size_t>(sb.end_pos() - pos);
        std::size_t rlen = std::min<std::size_t>(mss_, sb_avail);
        if (rlen > 0) {
          if (sb.type_at(pos) == mbuf::MbufType::kWcab) {
            // An outboard packet retransmits whole — even when it spans
            // several wire MTUs (large-segment offload): the adaptor re-cuts
            // it, and the content rule forbids mixing it with adjacent data.
            rlen = sb.mbuf_run(pos, sb_avail);
          } else {
            rlen = sb.homogeneous_run(pos, rlen);
          }
        }
        co_await send_segment(ctx, snd_nxt_, rlen, kTcpAck, /*rexmt=*/true);
        ++stats_.rexmt_segs;
        snd_nxt_ = saved_nxt;
      }
    }
    snd_wnd_ = wnd;
    // Persist is cancelled only by an actual transmission (output()): a
    // probe answer whose window is nonzero but still too small to send a
    // whole outboard packet must keep the probe clock running.
    if (snd_wnd_ > old_wnd) co_await output(ctx);
    co_return;
  }

  // New data acknowledged.
  const std::uint32_t acked = th.ack - snd_una_;
  Sockbuf& sb = cb_->snd();
  std::uint64_t ack_pos = una_pos_ + acked;
  if (fin_sent_ && ack_pos > sb.end_pos()) ack_pos = sb.end_pos();  // FIN phantom
  const auto drop = static_cast<std::size_t>(ack_pos - sb.base_pos());
  if (drop > 0) sb.drop(drop);
  snd_una_ = th.ack;
  una_pos_ = ack_pos;
  if (seq_gt(snd_una_, snd_nxt_)) snd_nxt_ = snd_una_;

  if (rtt_timing_ && seq_geq(th.ack, rtt_seq_)) {
    const sim::Duration measured = stack_.env().sim.now() - rtt_start_;
    update_rtt(measured);
    if (auto* tel = stack_.env().telemetry)
      tel->record_flow("rtt_ns", flow_id_, static_cast<std::uint64_t>(measured));
    rtt_timing_ = false;
  }
  rexmt_backoff_ = 0;
  dupacks_ = 0;

  // Congestion window growth (slow start / congestion avoidance).
  if (cwnd_ < ssthresh_) {
    cwnd_ += mss_;
  } else {
    cwnd_ += std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(mss_) * mss_ / cwnd_));
  }
  if (cwnd_ > par_.sndbuf) cwnd_ = static_cast<std::uint32_t>(par_.sndbuf);

  snd_wnd_ = wnd;

  stop_rexmt_timer();
  if (snd_una_ != snd_max_) start_rexmt_timer();

  // ACK of our FIN?
  if (fin_sent_ && th.ack == snd_max_) {
    switch (state_) {
      case TcpState::kFinWait1: enter_state(TcpState::kFinWait2); break;
      case TcpState::kClosing: enter_state(TcpState::kTimeWait); break;
      case TcpState::kLastAck:
        enter_state(TcpState::kClosed);
        teardown();
        break;
      default: break;
    }
  }

  cb_->notify_writable();
  co_await output(ctx);  // the opened window may allow more sends
}

sim::Task<void> TcpConnection::accept_data(KernCtx ctx, Mbuf* pkt,
                                           const TcpHeader& th,
                                           std::size_t data_len, bool fin) {
  auto& env = stack_.env();
  // Close the sender's one-way segment span (keyed by the untrimmed th.seq).
  // A duplicate delivery finds no open span — an orphan end, counted by the
  // registry, never an error.
  if (data_len > 0) {
    if (auto* tel = env.telemetry) {
      if (auto d = tel->span_end(
              telemetry::Stage::kSegment,
              telemetry::segment_key(key_.laddr, key_.lport, key_.faddr,
                                     key_.fport, th.seq)))
        tel->record_flow("seg_latency_ns", flow_id_,
                         static_cast<std::uint64_t>(*d));
    }
  }
  if (state_ == TcpState::kClosed) {  // orphaned while suspended
    env.pool.free_chain(pkt);
    co_return;
  }
  std::uint32_t seq = th.seq;
  std::size_t len = data_len;

  // Trim data we already have.
  if (seq_lt(seq, rcv_nxt_)) {
    const std::uint32_t dup = rcv_nxt_ - seq;
    if (dup >= len + (fin ? 1u : 0u)) {
      // Entirely duplicate: re-ACK so the peer resynchronizes (this is also
      // the response that answers zero-window probes).
      ++stats_.dup_segs_in;
      env.pool.free_chain(pkt);
      co_await send_control(ctx, snd_nxt_, kTcpAck);
      co_return;
    }
    mbuf::m_adj(pkt, static_cast<int>(dup));
    seq += dup;
    len -= dup;
  }

  if (seq != rcv_nxt_) {
    // Out of order: hold for reassembly (bounded by the advertised window),
    // and send an immediate duplicate ACK.
    ++stats_.ooo_segs;
    if (ooo_.contains(seq)) {
      env.pool.free_chain(pkt);
    } else {
      ooo_.emplace(seq, pkt);
      if (fin) ooo_fin_.emplace(seq, true);
    }
    co_await send_control(ctx, snd_nxt_, kTcpAck);
    co_return;
  }

  // In-order: deliver, then drain the reassembly queue.
  bool got_fin = false;
  Mbuf* rec = pkt;
  std::uint32_t rec_seq = seq;
  std::size_t rec_len = len;
  bool rec_fin = fin;
  for (;;) {
    if (rec_len > 0) {
      if (cb_->rcv().space() < rec_len) {
        // Beyond what we advertised; drop (the peer will retransmit).
        env.pool.free_chain(rec);
        break;
      }
      stats_.bytes_in += rec_len;
      rec->clear_flags(mbuf::kMPktHdr);
      cb_->rcv().append(rec);
    } else {
      env.pool.free_chain(rec);
    }
    rcv_nxt_ = rec_seq + static_cast<std::uint32_t>(rec_len);
    if (rec_fin) {
      got_fin = true;
      rcv_nxt_ += 1;
      break;
    }
    auto it = ooo_.find(rcv_nxt_);
    if (it == ooo_.end()) break;
    rec = it->second;
    rec_seq = it->first;
    rec_len = static_cast<std::size_t>(mbuf::m_length(rec));
    rec_fin = ooo_fin_.contains(rec_seq);
    ooo_fin_.erase(rec_seq);
    ooo_.erase(it);
  }

  if (got_fin && !fin_rcvd_) {
    fin_rcvd_ = true;
    drop_ooo_queue();
    switch (state_) {
      case TcpState::kEstablished: enter_state(TcpState::kCloseWait); break;
      case TcpState::kFinWait1: enter_state(TcpState::kClosing); break;
      case TcpState::kFinWait2: enter_state(TcpState::kTimeWait); break;
      default: break;
    }
  }

  cb_->notify_readable();

  // ACK policy: immediate every Nth segment or on FIN, else delayed. A
  // coalesced record (receive offload) stands in for several wire segments:
  // count its MSS-equivalents, so merging never slows the peer's ack clock
  // (and with it cwnd growth) below what the unmerged stream would see.
  unacked_segs_ += data_len > 0
                       ? static_cast<int>((data_len + mss_ - 1) / mss_)
                       : 1;
  ack_due_ = true;
  if (got_fin || unacked_segs_ >= par_.ack_every) {
    ack_due_ = false;
    unacked_segs_ = 0;
    delack_timer_.cancel();
    co_await send_control(ctx, snd_nxt_, kTcpAck);
  } else if (!delack_timer_.armed()) {
    delack_timer_ = proto_timer(par_.delack, [this] { delack_fire(); });
  }
}

void TcpConnection::cookie_establish(const IpHeader& ih, const TcpHeader& th,
                                     std::uint16_t peer_mss) {
  assert(state_ == TcpState::kListen);
  // Same tuple completion as the kListen SYN conversion...
  stack_.tcp_unlisten(key_.laddr, key_.lport, this);
  listening_ = false;
  key_.laddr = ih.dst;
  key_.faddr = ih.src;
  key_.fport = th.src_port;
  stack_.tcp_bind(key_, this);
  bound_ = true;

  cache_route();
  mss_ = static_cast<std::uint16_t>(
      (route_if_ != nullptr ? route_if_->mtu() : 1500) - kIpHdrLen - kTcpHdrLen);
  mss_ = std::min(mss_, peer_mss);
  // ...but every handshake variable comes from the cookie ACK instead of a
  // remembered SYN: the peer acked cookie+1 and its first data byte is
  // th.seq. Cookies carry no window-scale bits, so both directions run
  // unscaled.
  snd_scale_ = rcv_scale_ = 0;
  irs_ = th.seq - 1;
  rcv_nxt_ = th.seq;
  rcv_adv_ = th.seq;
  iss_ = th.ack - 1;
  snd_una_ = snd_nxt_ = snd_max_ = th.ack;
  cwnd_ = mss_;
  snd_wnd_ = th.win;
  enter_state(TcpState::kEstablished);
}

}  // namespace nectar::net
