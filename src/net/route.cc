#include "net/route.h"

#include <algorithm>

namespace nectar::net {

void RouteTable::add(IpAddr prefix, int masklen, Ifnet* ifp, IpAddr gateway) {
  routes_.push_back(Route{prefix & mask_of(masklen), masklen, ifp, gateway});
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const Route& a, const Route& b) { return a.masklen > b.masklen; });
}

void RouteTable::remove(IpAddr prefix, int masklen) {
  std::erase_if(routes_, [&](const Route& r) {
    return r.masklen == masklen && r.prefix == (prefix & mask_of(masklen));
  });
}

std::optional<RouteResult> RouteTable::lookup(IpAddr dst) const {
  for (const Route& r : routes_) {
    if ((dst & mask_of(r.masklen)) == r.prefix) {
      return RouteResult{r.ifp, r.gateway != 0 ? r.gateway : dst};
    }
  }
  return std::nullopt;
}

}  // namespace nectar::net
