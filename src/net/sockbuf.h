// Socket buffer: the stream buffer shared between the socket layer and TCP.
//
// The send buffer holds a mixed chain of regular, M_UIO, and M_WCAB mbufs in
// stream order. Positions are tracked in *stream coordinates* (a monotonic
// 64-bit byte offset from connection start, base_pos() being the offset of
// the first byte currently buffered): DMA completions convert UIO ranges to
// WCAB by absolute position, immune to concurrent front drops by ACKs.
//
// This is where two of the paper's stack changes live (§4.2):
//  * "code that searches the transmit queue for a block of data at a
//     specific offset" — copy_range(), which m_copym's across mixed types;
//  * the UIO -> WCAB conversion "after the data has been copied outboard" —
//     convert_to_wcab().
#pragma once

#include <cstdint>

#include "mbuf/mbuf_ops.h"

namespace nectar::net {

class Sockbuf {
 public:
  explicit Sockbuf(std::size_t hiwat) : hiwat_(hiwat) {}
  Sockbuf(const Sockbuf&) = delete;
  Sockbuf& operator=(const Sockbuf&) = delete;
  ~Sockbuf();

  [[nodiscard]] std::size_t cc() const noexcept { return cc_; }      // bytes buffered
  [[nodiscard]] std::size_t hiwat() const noexcept { return hiwat_; }
  [[nodiscard]] std::size_t space() const noexcept {
    return cc_ >= hiwat_ ? 0 : hiwat_ - cc_;
  }
  [[nodiscard]] bool empty() const noexcept { return cc_ == 0; }
  [[nodiscard]] mbuf::Mbuf* head() const noexcept { return head_; }
  [[nodiscard]] std::uint64_t base_pos() const noexcept { return base_pos_; }
  [[nodiscard]] std::uint64_t end_pos() const noexcept { return base_pos_ + cc_; }

  void set_hiwat(std::size_t hiwat) noexcept { hiwat_ = hiwat; }
  void set_pool(mbuf::MbufPool* pool) noexcept { pool_ = pool; }

  // Append a chain (takes ownership). Caller respects space().
  void append(mbuf::Mbuf* chain);

  // Drop `n` bytes from the front (ACK processing / delivery). Frees
  // fully-consumed mbufs (releasing outboard buffers via their owner).
  void drop(std::size_t n);

  // m_copym over the mixed chain: copy/share [pos, pos+len) in stream
  // coordinates. Descriptor mbufs are sliced/shared per mbuf_ops rules.
  [[nodiscard]] mbuf::Mbuf* copy_range(std::uint64_t pos, std::size_t len) const;

  // Replace [pos, pos+len) — which must currently be M_UIO data — with a
  // single M_WCAB mbuf describing the same bytes outboard. Splits boundary
  // mbufs as needed. `w` is adopted (refcount not incremented here).
  void convert_to_wcab(std::uint64_t pos, std::size_t len, const mbuf::Wcab& w,
                       const mbuf::UioWcabHdr& hdr);

  // Number of leading bytes (from `pos`) that are already outboard (M_WCAB)
  // or host-resident (regular) vs still M_UIO. Used by the driver to decide
  // the transmit method and by sosend to decide when a write's data is safe.
  [[nodiscard]] std::size_t uio_bytes() const noexcept { return uio_cc_; }

  // The mbuf type at stream position pos (head_ must cover pos).
  [[nodiscard]] mbuf::MbufType type_at(std::uint64_t pos) const;

  // Largest run length starting at `pos` (clamped to `maxlen`) whose mbufs
  // all share the same type — the packetization cut rule for the
  // non-coalescing single-copy path (§7.1).
  [[nodiscard]] std::size_t homogeneous_run(std::uint64_t pos, std::size_t maxlen) const;

  // Bytes remaining in the single mbuf containing `pos` (clamped to maxlen).
  // Retransmissions of M_WCAB data must not span outboard packet buffers —
  // each WCAB mbuf is one fully-formed CAB packet whose header the driver
  // rewrites in place (§4.3) — so segments are cut at mbuf boundaries there.
  [[nodiscard]] std::size_t mbuf_run(std::uint64_t pos, std::size_t maxlen) const;

 private:
  struct Cursor {
    mbuf::Mbuf* m;
    mbuf::Mbuf** link;  // pointer to the link that points at m
    std::size_t off;    // offset within m
  };
  Cursor seek(std::uint64_t pos);
  void recount() noexcept;

  mbuf::MbufPool* pool_ = nullptr;  // set on first append
  mbuf::Mbuf* head_ = nullptr;
  mbuf::Mbuf* tail_ = nullptr;
  std::size_t cc_ = 0;
  std::size_t uio_cc_ = 0;
  std::size_t hiwat_;
  std::uint64_t base_pos_ = 0;
};

}  // namespace nectar::net
