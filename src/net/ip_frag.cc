// IP fragmentation and reassembly.
//
// Fragmentation slices the transport record with m_copym, so descriptor
// mbufs are shared, never read — a fragmented single-copy UDP datagram stays
// single-copy. Reassembly concatenates fragment records in order; it never
// touches payload bytes, so outboard (M_WCAB) fragments reassemble too.
#include "net/ip.h"
#include "net/netstack.h"

namespace nectar::net {

using mbuf::Mbuf;

namespace {
constexpr sim::Duration kReasmTimeout = 30 * sim::kSecond;
}

sim::Task<void> IpFragOps::fragment(KernCtx ctx, Ip& ip, NetStack& stack, Mbuf* pkt,
                                    IpHeader proto_hdr, Ifnet* ifp, IpAddr next_hop) {
  auto& env = stack.env();
  const std::size_t max_payload = (ifp->mtu() - kIpHdrLen) & ~std::size_t{7};
  const auto total = static_cast<std::size_t>(pkt->pkthdr.len);

  for (std::size_t off = 0; off < total; off += max_payload) {
    const std::size_t flen = std::min(max_payload, total - off);
    Mbuf* data = mbuf::m_copym(pkt, static_cast<int>(off), static_cast<int>(flen));
    if (!data->has_pkthdr()) data->add_flags(mbuf::kMPktHdr);
    data->pkthdr = pkt->pkthdr;
    data->pkthdr.len = static_cast<int>(flen);

    IpHeader ih = proto_hdr;
    ih.total_len = static_cast<std::uint16_t>(kIpHdrLen + flen);
    ih.more_fragments = off + flen < total;
    ih.frag_offset = static_cast<std::uint16_t>(off / 8);

    Mbuf* m = mbuf::m_prepend(data, static_cast<int>(kIpHdrLen));
    write_ip_header({m->data(), kIpHdrLen}, ih);

    ++ip.stats_.opackets;
    ++ip.stats_.ofragments;
    // Each additional fragment costs another pass through ip_output.
    if (off != 0)
      co_await env.cpu.run(sim::usec(stack.costs().ip_output_us), ctx.acct, ctx.prio);
    co_await ifp->output(ctx, m, next_hop);
  }
  env.pool.free_chain(pkt);
}

sim::Task<void> IpFragOps::reassemble(KernCtx ctx, Ip& ip, NetStack& stack, Mbuf* m,
                                      const IpHeader& ih) {
  auto& env = stack.env();
  const auto key = std::make_tuple(ih.src, ih.dst, ih.proto, ih.id);
  const std::size_t payload_len = ih.total_len - kIpHdrLen;
  mbuf::m_adj(m, static_cast<int>(kIpHdrLen));  // keep payload only

  auto [it, fresh] = ip.reasm_.try_emplace(key);
  Ip::FragQueue& q = it->second;
  if (fresh) {
    q.timeout = env.sim.timer_after(kReasmTimeout, [&ip, &env, key] {
      auto qit = ip.reasm_.find(key);
      if (qit == ip.reasm_.end()) return;
      for (auto& [off, rec] : qit->second.frags) env.pool.free_chain(rec);
      ++ip.stats_.frag_timeouts;
      ip.reasm_.erase(qit);
    });
  }

  if (q.frags.contains(ih.frag_offset)) {  // duplicate fragment
    env.pool.free_chain(m);
    co_return;
  }
  q.frags.emplace(ih.frag_offset, m);
  if (!ih.more_fragments)
    q.total_len = static_cast<std::size_t>(ih.frag_offset) * 8 + payload_len;

  // Completeness: contiguous cover from 0 to total_len.
  if (q.total_len == 0) co_return;
  std::size_t expect = 0;
  for (const auto& [off8, rec] : q.frags) {
    if (static_cast<std::size_t>(off8) * 8 != expect) co_return;
    expect += static_cast<std::size_t>(mbuf::m_length(rec));
  }
  if (expect != q.total_len) co_return;

  // Assemble in order; the offset-0 fragment's record carries the pkthdr.
  q.timeout.cancel();
  Mbuf* first = nullptr;
  for (auto& [off8, rec] : q.frags) {
    if (first == nullptr) {
      first = rec;
    } else {
      rec->clear_flags(mbuf::kMPktHdr);
      mbuf::m_cat(first, rec);
    }
  }
  const std::size_t total_len = q.total_len;  // q dies with the erase below
  first->pkthdr.len = static_cast<int>(total_len);
  // A per-fragment hardware checksum does not cover the whole datagram.
  first->pkthdr.rx_hw_sum_valid = false;
  ip.reasm_.erase(it);
  ++ip.stats_.reassembled;

  IpHeader whole = ih;
  whole.more_fragments = false;
  whole.frag_offset = 0;
  whole.total_len = static_cast<std::uint16_t>(kIpHdrLen + total_len);
  co_await stack.transport_input(ctx, whole.proto, first, whole);
}

}  // namespace nectar::net
