// TCP output engine: packetization, checksum setup (software or outboard
// seed), and the single-copy bookkeeping closure.
#include <cassert>

#include "net/ip.h"
#include "net/tcp.h"
#include "telemetry/telemetry.h"

namespace nectar::net {

using mbuf::Mbuf;

std::uint16_t TcpConnection::advertised_window() {
  const std::size_t space = cb_->rcv().space();
  const std::uint64_t max_adv = 0xffffULL << rcv_scale_;
  const auto win = static_cast<std::uint32_t>(std::min<std::uint64_t>(space, max_adv));
  const std::uint16_t wire = static_cast<std::uint16_t>(win >> rcv_scale_);
  const std::uint32_t edge = rcv_nxt_ + (static_cast<std::uint32_t>(wire) << rcv_scale_);
  if (seq_gt(edge, rcv_adv_)) rcv_adv_ = edge;
  return wire;
}

sim::Task<void> TcpConnection::output(KernCtx ctx) {
  if (in_output_) {
    output_again_ = true;
    co_return;
  }
  in_output_ = true;
  do {
    output_again_ = false;
    for (;;) {
      if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
          state_ != TcpState::kFinWait1 && state_ != TcpState::kClosing &&
          state_ != TcpState::kLastAck) {
        break;
      }
      cache_route();
      if (route_if_ == nullptr) break;

      Sockbuf& sb = cb_->snd();
      const std::uint64_t nxt_pos = seq_to_pos(snd_nxt_);
      const std::uint64_t end_pos = sb.end_pos();
      const std::size_t avail = end_pos > nxt_pos
                                    ? static_cast<std::size_t>(end_pos - nxt_pos)
                                    : 0;
      const std::uint32_t wnd = std::min(snd_wnd_, cwnd_);
      const std::uint64_t in_flight = nxt_pos - una_pos_;
      const std::size_t usable =
          wnd > in_flight ? static_cast<std::size_t>(wnd - in_flight) : 0;
      std::size_t len = std::min(avail, usable);

      // Single-copy packetization never mixes data formats in one packet and
      // never coalesces separate writes' descriptors (§7.1): descriptor
      // segments are cut at mbuf boundaries (one UIO descriptor == one
      // write chunk; one WCAB mbuf == one outboard packet, which header-
      // rewrite retransmission requires). The cut is applied whenever the
      // buffer holds data, not only while the route reports single-copy:
      // graceful degradation can drop the capability while descriptors
      // staged earlier still sit in the send buffer, and those keep their
      // packet boundaries no matter what the interface says today.
      if (len > 0) {
        len = sb.homogeneous_run(nxt_pos, len);
        const auto t = sb.type_at(nxt_pos);
        if (t == mbuf::MbufType::kWcab) {
          // An outboard packet (re)transmits whole or not at all: the host
          // cannot split data it cannot read (§4.3). With large-segment
          // offload one WCAB mbuf may span several wire MTUs — it still goes
          // out as one descriptor, exceeding mss_; the adaptor cuts it into
          // wire segments at MDMA time. If the window doesn't cover the
          // whole mbuf, wait (probing if nothing in flight will re-open it).
          const std::size_t whole = sb.mbuf_run(nxt_pos, avail);
          if (std::min(avail, usable) < whole) {
            // The congestion window can be smaller than a multi-MTU
            // super-segment it never had the chance to grow past (growing
            // requires sending, and this packet cannot be sent partially).
            // Classic TSO dispensation: while cwnd has any room left and the
            // peer's window covers the whole packet beyond what's in flight,
            // send anyway — a bounded overshoot of at most tso_max wire
            // segments past cwnd, after which cwnd grows normally off the
            // ACKs. (Requiring cwnd to fully cover a super-segment would
            // make slow start stop-and-wait: cwnd only grows by sending.)
            const bool force = avail >= whole && in_flight < cwnd_ &&
                               static_cast<std::uint64_t>(snd_wnd_) >=
                                   in_flight + whole;
            if (!force) {
              if (in_flight == 0) arm_persist();
              break;
            }
          }
          len = whole;
        } else {
          len = std::min(len, static_cast<std::size_t>(mss_));
          if (t == mbuf::MbufType::kUio) len = sb.mbuf_run(nxt_pos, len);
        }
      }

      // Nagle (copied data only — see TcpParams::nagle): hold a sub-MSS
      // segment while data is in flight.
      if (par_.nagle && len > 0 && len < mss_ && len == avail &&
          snd_nxt_ != snd_una_ && !fin_queued_ &&
          sb.type_at(nxt_pos) == mbuf::MbufType::kData) {
        break;
      }

      const bool fin_now = fin_queued_ && (avail == len);
      if (len == 0 && !(fin_now && !fin_sent_) &&
          !(fin_now && seq_lt(snd_nxt_, snd_max_))) {
        // Nothing sendable. If data is pending but nothing is in flight, no
        // future ACK will restart us: probe the peer's window.
        if (avail > 0 && in_flight == 0) arm_persist();
        break;
      }

      const bool rexmt = seq_lt(snd_nxt_, snd_max_);
      std::uint8_t flags = kTcpAck;
      if (fin_now) flags |= kTcpFin;
      persist_timer_.cancel();  // progress: no probe needed
      const std::uint32_t seg_seq = snd_nxt_;
      co_await send_segment(ctx, seg_seq, len, flags, rexmt);

      // send_segment suspends (CPU, IP, driver); an ACK processed meanwhile
      // may have moved snd_nxt_/snd_una_. Advance from the *captured* seq and
      // never move snd_nxt_ backwards — positions derived from a stale
      // snd_nxt_ would land mid-mbuf, which the WCAB invariants forbid.
      std::uint32_t new_nxt = seg_seq + static_cast<std::uint32_t>(len);
      if (fin_now) new_nxt += 1;
      if (seq_gt(new_nxt, snd_nxt_)) snd_nxt_ = new_nxt;
      if (seq_gt(new_nxt, snd_max_)) {
        stats_.bytes_out += len;
        snd_max_ = new_nxt;
      } else {
        ++stats_.rexmt_segs;
      }

      if (!rtt_timing_ && len > 0 && !rexmt) {
        rtt_timing_ = true;
        rtt_seq_ = snd_nxt_;
        rtt_start_ = stack_.env().sim.now();
      }
      if (fin_now && !fin_sent_) {
        fin_sent_ = true;
        if (state_ == TcpState::kEstablished) enter_state(TcpState::kFinWait1);
        else if (state_ == TcpState::kCloseWait) enter_state(TcpState::kLastAck);
      }
      start_rexmt_timer();
      ack_due_ = false;
      unacked_segs_ = 0;
      delack_timer_.cancel();
    }
  } while (output_again_);
  in_output_ = false;
}

sim::Task<void> TcpConnection::send_segment(KernCtx ctx, std::uint32_t seq,
                                            std::size_t len, std::uint8_t flags,
                                            bool rexmt) {
  auto& env = stack_.env();
  co_await env.cpu.run(sim::usec(stack_.costs().tcp_output_us), ctx.acct, ctx.prio);

  // The CPU charge suspended us: the connection may have been closed or
  // orphaned, or an ACK may have freed (part of) this segment's data. The
  // peer already has (or no longer wants) it — skip. (RSTs are exactly the
  // segment a just-closed connection still needs to emit.)
  if (state_ == TcpState::kClosed && !(flags & kTcpRst)) co_return;
  if (len > 0 && seq_lt(seq, snd_una_)) co_return;

  // ECN flags: the latched echo rides every plain ACK until the peer's CWR
  // clears it; a pending CWR rides the first data segment after a cut.
  if (ecn_echo_ && (flags & kTcpAck) != 0 &&
      (flags & (kTcpSyn | kTcpRst)) == 0) {
    flags |= kTcpEce;
  }
  if (cwr_pending_ && len > 0) {
    flags |= kTcpCwr;
    cwr_pending_ = false;
    ++stats_.ecn_cwr_sent;
  }

  ++stats_.segs_out;
  // One-way segment span: both endpoints derive the same key from the
  // canonicalized 4-tuple plus seq, so the receiver's accept_data closes it.
  // A retransmission re-begins the span (counted) — it then measures the
  // delivered copy.
  if (len > 0) {
    if (auto* tel = env.telemetry)
      tel->span_begin(telemetry::Stage::kSegment, env.tel_pid,
                      telemetry::segment_key(key_.laddr, key_.lport, key_.faddr,
                                             key_.fport, seq),
                      flow_id_);
  }

  Mbuf* data = nullptr;
  if (len > 0) data = cb_->snd().copy_range(seq_to_pos(seq), len);

  TcpHeader th;
  th.src_port = key_.lport;
  th.dst_port = key_.fport;
  th.seq = seq;
  th.flags = flags;
  if (flags & kTcpAck) th.ack = rcv_nxt_;
  th.win = advertised_window();
  if (flags & kTcpSyn) {
    th.mss = mss_;
    if (par_.window_scaling) {
      th.has_ws = true;
      th.ws = rcv_scale_;
    }
  }
  const std::size_t hlen = kTcpHdrLen + tcp_options_len(th);
  // A multi-MTU super-segment's wire checksums are recomputed per wire
  // segment at MDMA fan-out time; seed the header template with the first
  // segment's pseudo length (hlen + len would overflow the 16-bit field).
  const std::size_t seed_len = std::min(len, static_cast<std::size_t>(mss_));
  const auto seg_len = static_cast<std::uint16_t>(hlen + seed_len);

  // Descriptor data always travels the hw path: the host cannot read outboard
  // bytes to checksum them. That holds even if the interface has dropped
  // kCapHwChecksum since the data was pinned (degraded mode) — WCAB
  // retransmits use the saved body sum through the engine's combine adder,
  // which keeps working, and UIO segments report a DMA error and retry.
  const bool data_is_descriptor = data != nullptr && data->is_descriptor();
  const bool hw = data_is_descriptor ||
                  (route_if_ != nullptr && (route_if_->caps() & kCapHwChecksum) &&
                   par_.csum_offload);

  Mbuf* h = env.pool.get_hdr();
  // Header at the end of the mbuf: leading space serves the IP and link
  // header prepends without extra mbufs.
  h->align_end(hlen);
  std::byte hdr_bytes[64];
  std::span<std::byte> hb{hdr_bytes, hlen};

  if (hw) {
    ++stats_.hw_csum_tx;
    // Seed: pseudo-header + TCP header with a zero checksum field (§4.3 —
    // "the host is responsible for the fields in the header (the TCP header
    // and pseudo-header)"). The CAB combines this with the body sum it
    // computes during the SDMA transfer.
    th.checksum = 0;
    write_tcp_header(hb, th);
    const std::uint32_t seed_sum =
        transport_pseudo_sum(key_.laddr, key_.faddr, kProtoTcp, seg_len) +
        checksum::ones_sum(hb);
    th.checksum = checksum::fold(seed_sum);
    write_tcp_header(hb, th);
    h->pkthdr.csum_tx.offload = true;
    h->pkthdr.csum_tx.csum_offset = static_cast<std::uint16_t>(kIpHdrLen + 16);
    h->pkthdr.csum_tx.skip_words = static_cast<std::uint16_t>((kIpHdrLen + hlen) / 4);
    // Large-segment offload: a WCAB mbuf wider than one MSS goes to the
    // adaptor as a single descriptor; the MDMA engine cuts the payload into
    // wire segments of at most mss_ bytes each.
    if (len > static_cast<std::size_t>(mss_))
      h->pkthdr.csum_tx.tso_seg_payload = mss_;
  } else {
    ++stats_.sw_csum_tx;
    th.checksum = 0;
    write_tcp_header(hb, th);
    std::uint32_t sum =
        transport_pseudo_sum(key_.laddr, key_.faddr, kProtoTcp, seg_len) +
        checksum::ones_sum(hb);
    if (data != nullptr) {
      sum = checksum::combine(sum, mbuf::in_cksum_range(data, 0, static_cast<int>(len)),
                              hlen);
      // The software checksum is the unmodified stack's per-byte read pass.
      co_await env.cpu.run(
          sim::transfer_time(static_cast<std::int64_t>(len),
                             stack_.costs().cksum_bw_bps),
          ctx.acct, ctx.prio);
    }
    th.checksum = checksum::finish(sum);
    write_tcp_header(hb, th);
  }

  h->append(hb);
  h->next = data;
  h->pkthdr.len = static_cast<int>(hlen + len);
  h->pkthdr.flow = flow_id_;

  // Single-copy bookkeeping: when this packet's data is M_UIO, arrange for
  // the send buffer to learn the outboard location once the SDMA completes.
  if (data_is_descriptor && data->type() == mbuf::MbufType::kUio) {
    const std::uint64_t pos = seq_to_pos(seq);
    const std::size_t dlen = len;
    mbuf::DmaSync* sync = data->uw_hdr().sync;
    h->pkthdr.on_outboarded = [this, pos, dlen, sync](const mbuf::Wcab& w) {
      if (sync != nullptr) sync->done(static_cast<int>(dlen));
      if (state_ == TcpState::kClosed) return;  // orphaned mid-flight
      mbuf::Wcab mine = w;
      if (mine.owner != nullptr) mine.owner->outboard_retain(mine.handle);
      mbuf::UioWcabHdr hdr;
      hdr.sync = sync;
      cb_->snd().convert_to_wcab(pos, dlen, mine, hdr);
    };
  }
  (void)rexmt;

  co_await stack_.ip().output(ctx, h, key_.laddr, key_.faddr, kProtoTcp,
                              /*dont_fragment=*/true);
}

sim::Task<void> TcpConnection::send_control(KernCtx ctx, std::uint32_t seq,
                                            std::uint8_t flags) {
  co_await send_segment(ctx, seq, 0, flags, /*rexmt=*/false);
}

void TcpConnection::arm_persist() {
  if (persist_timer_.armed()) return;
  persist_timer_ = proto_timer(std::max<sim::Duration>(rto(), sim::msec(500)),
                               [this] { persist_fire(); });
}

void TcpConnection::persist_fire() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;
  // Window probe: a zero-length segment below the window forces the peer to
  // respond with an ACK carrying its current window. Any successful
  // transmission cancels the timer (send_segment).
  KernCtx ctx{stack_.env().intr_acct, sim::Priority::Kernel};
  sim::spawn(send_control(ctx, snd_una_ - 1, kTcpAck));
  arm_persist();
}

}  // namespace nectar::net
