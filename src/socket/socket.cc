#include "socket/socket.h"

#include <cassert>

namespace nectar::socket {

using mbuf::Mbuf;
using net::KernCtx;

Socket::Socket(net::NetStack& stack, Proto proto, SocketOptions opts)
    : stack_(stack),
      proto_(proto),
      opts_(opts),
      snd_(opts.tcp.sndbuf),
      rcv_(opts.tcp.rcvbuf),
      readable_(stack.env().sim),
      writable_(stack.env().sim),
      tx_sync_(stack.env().sim),
      rx_sync_(stack.env().sim) {
  snd_.set_pool(&stack.env().pool);
  rcv_.set_pool(&stack.env().pool);
  if (proto_ == Proto::kTcp) {
    tp_ = std::make_unique<net::TcpConnection>(stack_, *this, opts_.tcp);
  }
}

Socket::~Socket() {
  if (uport_ != 0) stack_.udp().unbind(uport_);
  for (auto& d : dgrams_) stack_.env().pool.free_chain(d.data);
  if (tp_) {
    // Protocol activity may still be in flight (delayed ACKs, the tail of a
    // FIN exchange): detach the connection and let the stack keep it alive.
    tp_->orphan();
    stack_.adopt_zombie(std::move(tp_));
  }
}

sim::Task<bool> Socket::connect(ProcCtx& p, net::IpAddr addr, std::uint16_t port,
                                std::uint16_t lport) {
  KernCtx ctx{p.sys_acct, p.prio};
  co_await stack_.env().cpu.run(sim::usec(stack_.costs().syscall_us), ctx.acct,
                                ctx.prio);
  co_return co_await tp_->connect(ctx, addr, port, lport);
}

void Socket::listen(std::uint16_t port) { tp_->listen(port); }

sim::Task<bool> Socket::accept(ProcCtx& p) {
  (void)p;
  co_return co_await tp_->wait_established();
}

sim::Task<void> Socket::close(ProcCtx& p) {
  KernCtx ctx{p.sys_acct, p.prio};
  co_await stack_.env().cpu.run(sim::usec(stack_.costs().syscall_us), ctx.acct,
                                ctx.prio);
  co_await tp_->close(ctx);
}

void Socket::bind(std::uint16_t port) {
  stack_.udp().bind(port, this);
  uport_ = port;
}

void Socket::udp_deliver(Mbuf* data, net::IpAddr src, std::uint16_t sport) {
  dgrams_.push_back(Datagram{data, src, sport});
  readable_.notify_all();
}

// ------------------------------------------------------- in-kernel (share)

sim::Task<void> Socket::send_mbufs(KernCtx ctx, Mbuf* chain) {
  assert(proto_ == Proto::kTcp);
  const auto len = static_cast<std::size_t>(mbuf::m_length(chain));
  // Share semantics: the chain IS the buffer; block for space, no copy.
  while (snd_.space() < len) co_await writable_.wait();
  for (Mbuf* m = chain; m != nullptr; m = m->next) m->clear_flags(mbuf::kMPktHdr);
  snd_.append(chain);
  stats_.bytes_sent += len;
  co_await tp_->send_ready(ctx);
}

sim::Task<Mbuf*> Socket::recv_mbufs(KernCtx ctx, std::size_t max_bytes) {
  assert(proto_ == Proto::kTcp);
  while (rcv_.empty()) {
    if (tp_->fin_received() || tp_->state() == net::TcpState::kClosed)
      co_return nullptr;
    co_await readable_.wait();
  }
  // Detach whole mbufs from the front up to max_bytes (at least one).
  Mbuf* head = nullptr;
  Mbuf** link = &head;
  std::size_t taken = 0;
  while (!rcv_.empty()) {
    Mbuf* m = rcv_.head();
    const auto mlen = static_cast<std::size_t>(m->len());
    if (taken != 0 && taken + mlen > max_bytes) break;
    // copy_range shares descriptors / clusters; then drop the original.
    Mbuf* shared = rcv_.copy_range(rcv_.base_pos(), mlen);
    rcv_.drop(mlen);
    *link = shared;
    while (*link != nullptr) link = &(*link)->next;
    taken += mlen;
  }
  stats_.bytes_received += taken;
  co_await tp_->window_update(ctx);
  co_return head;
}

sim::Task<void> Socket::sendto_mbufs(KernCtx ctx, Mbuf* chain, net::IpAddr dst,
                                     std::uint16_t dport) {
  assert(proto_ == Proto::kUdp);
  const net::IpAddr src = stack_.source_addr_for(dst);
  co_await stack_.udp().output(ctx, chain, src, uport_, dst, dport,
                               opts_.udp_checksum);
}

sim::Task<Socket::KernelDatagram> Socket::recvfrom_mbufs(KernCtx ctx) {
  (void)ctx;
  while (dgrams_.empty()) co_await readable_.wait();
  Datagram d = dgrams_.front();
  dgrams_.pop_front();
  co_return KernelDatagram{d.data, d.src, d.sport};
}

}  // namespace nectar::socket
