// The socket layer: copy-semantics user API over TCP/UDP, with both the
// traditional copy path and the paper's single-copy path.
//
// Per-write path selection (§4.4.3, §4.5): a write goes single-copy iff
//   * policy allows it,
//   * the route's interface has outboard buffering (kCapSingleCopy),
//   * the user buffer is 32-bit word aligned, and
//   * the write is at least `single_copy_threshold` bytes (copy avoidance
//     only pays off for large transfers).
// Otherwise data is copied into kernel cluster mbufs (charged at the
// memory-copy bandwidth) exactly as an unmodified stack would.
//
// Single-copy transmit (§4.4.1, §4.4.2): the data is pinned and mapped
// incrementally in application context (quantum = the interface MTU, which
// is what the paper's §7.3 per-packet pin/unpin/map accounting assumes),
// described by an M_UIO mbuf appended to the send buffer, and the call
// returns only when every byte has been copied outboard (the UIO-counter
// synchronization; DMAs are uncancelable). Receive mirrors it: M_WCAB data
// in the receive buffer is DMAed straight to the (pinned) user buffer.
#pragma once

#include <deque>

#include "mem/user_buffer.h"
#include "net/sockbuf.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace nectar::socket {

// Per-process syscall context.
struct ProcCtx {
  mem::AddressSpace& as;
  sim::AccountId user_acct;
  sim::AccountId sys_acct;
  sim::Priority prio = sim::Priority::Normal;
};

enum class CopyPolicy {
  kAuto,              // size/alignment/interface decide (§4.4.3)
  kAlwaysSingleCopy,  // the paper's measurement configuration (§7.1)
  kNeverSingleCopy,   // the unmodified stack
};

struct SocketOptions {
  CopyPolicy policy = CopyPolicy::kAuto;
  std::size_t single_copy_threshold = 16 * 1024;
  net::TcpParams tcp;
  bool udp_checksum = true;
  // §4.5 transmit alignment fix-up (the optimization the paper describes but
  // did not implement): when a large write starts at a non-word boundary,
  // push the short unaligned prefix through the copy path so the bulk of the
  // data can still go single-copy. Off by default, matching the paper.
  bool tx_align_fixup = false;
};

class Socket final : public net::TcpCallbacks, public net::UdpSocketIface {
 public:
  enum class Proto { kTcp, kUdp };

  Socket(net::NetStack& stack, Proto proto, SocketOptions opts = {});
  ~Socket() override;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // ------------------------------------------------------------------- TCP
  // `lport` 0 lets the stack pick an ephemeral port; the wload shim passes
  // an explicitly pre-allocated one so exhaustion is distinguishable from
  // an unreachable/refusing peer.
  sim::Task<bool> connect(ProcCtx& p, net::IpAddr addr, std::uint16_t port,
                          std::uint16_t lport = 0);
  void listen(std::uint16_t port);
  sim::Task<bool> accept(ProcCtx& p);  // single-shot: wait for establishment
  sim::Task<void> close(ProcCtx& p);
  sim::Task<void> wait_closed() { return tp_->wait_closed(); }

  // Stream write; returns bytes written (== data length; blocks for space and
  // — single-copy — for outboard completion).
  sim::Task<std::size_t> send(ProcCtx& p, mem::Uio data);

  // Stream read into `dst`; returns bytes read, 0 at EOF.
  sim::Task<std::size_t> recv(ProcCtx& p, mem::Uio dst);

  // ------------------------------------------------------------------- UDP
  void bind(std::uint16_t port);
  sim::Task<std::size_t> sendto(ProcCtx& p, mem::Uio data, net::IpAddr dst,
                                std::uint16_t dport);
  struct RecvFromResult {
    std::size_t len = 0;
    net::IpAddr src = 0;
    std::uint16_t sport = 0;
  };
  sim::Task<RecvFromResult> recvfrom(ProcCtx& p, mem::Uio dst);

  // --------------------------------------------- in-kernel API (§5, share
  // semantics: mbuf chains are the shared buffers; no copy, no wait).
  sim::Task<void> send_mbufs(net::KernCtx ctx, mbuf::Mbuf* chain);
  // Detach up to max_bytes from the receive stream (whole mbufs; at least one
  // if data is available). Returns nullptr at EOF. Note: may contain M_WCAB
  // mbufs; in-kernel consumers must run them through core::convert_wcab_record.
  sim::Task<mbuf::Mbuf*> recv_mbufs(net::KernCtx ctx, std::size_t max_bytes);

  // UDP datagram variants for in-kernel applications.
  sim::Task<void> sendto_mbufs(net::KernCtx ctx, mbuf::Mbuf* chain, net::IpAddr dst,
                               std::uint16_t dport);
  struct KernelDatagram {
    mbuf::Mbuf* data = nullptr;
    net::IpAddr src = 0;
    std::uint16_t sport = 0;
  };
  sim::Task<KernelDatagram> recvfrom_mbufs(net::KernCtx ctx);

  // Readiness probes for the wload shim's wpoll (no side effects, no
  // blocking): "readable" means a recv/accept-style call would not block —
  // buffered data, a delivered datagram, or stream EOF; "writable" means
  // send-buffer space on an established stream.
  [[nodiscard]] bool recv_ready() const noexcept {
    if (proto_ == Proto::kUdp) return !dgrams_.empty();
    return !rcv_.empty() || tp_->fin_received() ||
           tp_->state() == net::TcpState::kClosed;
  }
  [[nodiscard]] bool send_ready() const noexcept {
    return proto_ == Proto::kTcp && tp_->established() && snd_.space() > 0;
  }
  // Every byte send() accepted has been ACKed (the send sockbuf drops data
  // only on ACK), or the connection is dead so nothing more can drain.
  // Destroying a Socket orphans its TCP connection onto zero-capacity
  // buffers, which discards un-ACKed send data — callers that promise
  // close-does-not-lose-data (the wload shim) wait for this before teardown.
  [[nodiscard]] bool tx_drained() const noexcept {
    return proto_ != Proto::kTcp || snd_.empty() ||
           tp_->state() == net::TcpState::kClosed;
  }

  [[nodiscard]] net::TcpConnection& tcp() noexcept { return *tp_; }
  [[nodiscard]] net::NetStack& stack() noexcept { return stack_; }
  [[nodiscard]] Proto proto() const noexcept { return proto_; }
  [[nodiscard]] const SocketOptions& options() const noexcept { return opts_; }

  struct SockStats {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t single_copy_writes = 0;
    std::uint64_t copy_writes = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t wcab_bytes_received = 0;  // delivered by outboard copy-out
    std::uint64_t unaligned_fallbacks = 0;  // §4.5
    std::uint64_t align_fixups = 0;          // §4.5 prefix fix-ups applied
    // Chunks the overload descriptor gate diverted to the copy path.
    std::uint64_t overload_copy_fallbacks = 0;
  };
  [[nodiscard]] const SockStats& sock_stats() const noexcept { return stats_; }

  // TcpCallbacks
  net::Sockbuf& snd() override { return snd_; }
  net::Sockbuf& rcv() override { return rcv_; }
  void notify_readable() override { readable_.notify_all(); }
  void notify_writable() override { writable_.notify_all(); }
  void notify_state() override {
    readable_.notify_all();
    writable_.notify_all();
  }

  // UdpSocketIface
  void udp_deliver(mbuf::Mbuf* data, net::IpAddr src, std::uint16_t sport) override;

 private:
  // sosend.cc
  [[nodiscard]] bool single_copy_eligible(const mem::Uio& data, net::IpAddr dst,
                                          std::size_t len);
  sim::Task<void> append_single_copy(ProcCtx& p, net::KernCtx ctx,
                                     const mem::Uio& chunk);
  sim::Task<void> append_copy(ProcCtx& p, net::KernCtx ctx, const mem::Uio& chunk,
                              mbuf::Mbuf** out_chain);
  sim::Task<void> release_pins(ProcCtx& p, net::KernCtx ctx, const mem::Uio& data);

  // soreceive.cc
  sim::Task<std::size_t> deliver_bytes(ProcCtx& p, net::KernCtx ctx,
                                       net::Sockbuf& sb, mem::Uio dst,
                                       std::size_t take);

  net::NetStack& stack_;
  Proto proto_;
  SocketOptions opts_;
  net::Sockbuf snd_;
  net::Sockbuf rcv_;
  std::unique_ptr<net::TcpConnection> tp_;

  std::uint16_t uport_ = 0;
  struct Datagram {
    mbuf::Mbuf* data;
    net::IpAddr src;
    std::uint16_t sport;
  };
  std::deque<Datagram> dgrams_;

  sim::Condition readable_;
  sim::Condition writable_;
  mbuf::DmaSync tx_sync_;
  mbuf::DmaSync rx_sync_;
  std::vector<mem::Uio> pinned_rx_;  // user ranges pinned for in-flight copy-outs
  std::vector<mem::Uio> pinned_tx_;  // exact ranges pinned by staging (released
                                     // symmetrically when the write completes)
  std::size_t staged_tx_ = 0;  // bytes staged outboard but not yet in snd_

  // Staging DMAs can complete out of submission order (a transfer error makes
  // the driver re-post one packet while its successors sail through). The
  // send buffer is a byte stream, so completions are parked here and appended
  // strictly in staging order.
  struct StagedSlot {
    std::size_t plen = 0;
    bool ready = false;
    mbuf::Wcab w{};
    std::uint64_t tel_key = 0;  // sosend span (0 = telemetry off)
  };
  std::deque<StagedSlot> stage_q_;
  std::uint64_t stage_base_ = 0;  // id of stage_q_.front()
  void stage_complete(std::uint64_t id, mbuf::Wcab w);

  SockStats stats_;
};

}  // namespace nectar::socket
