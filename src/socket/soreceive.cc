// soreceive: the receive half of the user socket API.
//
// Regular mbuf data is copied to the user buffer by the CPU (charged at copy
// bandwidth). M_WCAB data is DMAed straight from CAB network memory to the
// (pinned) user buffer via the driver's copy-out routine — the single copy —
// with an unaligned-destination fallback that stages through a kernel buffer
// (§4.5: "this flexibility does not exist on receive", so the fallback pays
// an extra CPU copy).
#include <cassert>
#include <cstring>
#include <vector>

#include "socket/socket.h"
#include "telemetry/telemetry.h"

namespace nectar::socket {

using mbuf::Mbuf;
using net::KernCtx;

namespace {

// Copy a kernel span into user memory described by a uio (real bytes only;
// simulated cost is charged by the caller).
void copy_to_user(const mem::Uio& dst, std::span<const std::byte> src) {
  std::size_t pos = 0;
  for (const auto& v : dst.iov) {
    if (pos >= src.size()) break;
    const std::size_t n = std::min(v.len, src.size() - pos);
    auto out = dst.space->write_view(v.base, n);
    std::memcpy(out.data(), src.data() + pos, n);
    pos += n;
  }
}

// Find the interface able to copy out this outboard buffer.
net::Ifnet* owner_ifnet(net::NetStack& stack, const mbuf::Wcab& w) {
  for (net::Ifnet* ifp : stack.ifnets()) {
    if (ifp->outboard_owner() == w.owner) return ifp;
  }
  return nullptr;
}

}  // namespace

// Deliver `take` bytes from the front of `sb` into `dst` (user memory).
sim::Task<std::size_t> Socket::deliver_bytes(ProcCtx& p, KernCtx ctx,
                                             net::Sockbuf& sb, mem::Uio dst,
                                             std::size_t take) {
  auto& env = stack_.env();
  std::size_t delivered = 0;
  while (delivered < take) {
    Mbuf* m = sb.head();
    assert(m != nullptr);
    const auto mlen = static_cast<std::size_t>(m->len());
    const std::size_t avail = std::min(mlen, take - delivered);
    if (avail == 0)
      throw std::logic_error("soreceive: empty mbuf in receive stream");
    mem::Uio sub = dst.slice(delivered, avail);

    if (m->type() == mbuf::MbufType::kData) {
      co_await env.cpu.run(sim::transfer_time(static_cast<std::int64_t>(avail),
                                              stack_.costs().copy_bw_bps),
                           ctx.acct, ctx.prio);
      copy_to_user(sub, m->span().first(avail));
      sb.drop(avail);
    } else if (m->type() == mbuf::MbufType::kWcab) {
      const mbuf::Wcab w = m->wcab();  // snapshot before drop mutates it
      net::Ifnet* drv = owner_ifnet(stack_, w);
      if (drv == nullptr)
        throw std::logic_error("soreceive: orphan WCAB data (no owning device)");
      stats_.wcab_bytes_received += avail;

      if (sub.word_aligned() && opts_.policy != CopyPolicy::kNeverSingleCopy) {
        // Single-copy: pin+map the user pages (app context), then DMA.
        const std::size_t quantum = 32 * 1024;
        for (const auto& v : sub.iov) {
          for (std::size_t off = 0; off < v.len; off += quantum) {
            const std::size_t n = std::min(quantum, v.len - off);
            co_await env.pin_cache.acquire(p.as, v.base + off, n, ctx.acct, ctx.prio);
          }
        }
        mem::Uio limited = sub;
        co_await drv->copy_out(ctx, w, 0, limited, &rx_sync_);
        sb.drop(avail);  // the driver holds the buffer until the DMA executes
        pinned_rx_.push_back(sub);
      } else {
        // Unaligned destination: stage through a kernel buffer, then a CPU
        // copy — the receive side cannot realign (§4.5).
        std::vector<std::byte> staging(avail);
        mbuf::DmaSync local(env.sim);
        co_await drv->copy_out_raw(ctx, w, 0, staging, &local);
        co_await local.drain();
        co_await env.cpu.run(sim::transfer_time(static_cast<std::int64_t>(avail),
                                                stack_.costs().copy_bw_bps),
                             ctx.acct, ctx.prio);
        copy_to_user(sub, staging);
        sb.drop(avail);
      }
    } else {
      throw std::logic_error("soreceive: M_UIO in a receive buffer");
    }
    delivered += avail;
  }
  co_return delivered;
}

sim::Task<std::size_t> Socket::recv(ProcCtx& p, mem::Uio dst) {
  assert(proto_ == Proto::kTcp);
  auto& env = stack_.env();
  KernCtx ctx{p.sys_acct, p.prio, tp_->flow_id()};
  co_await env.cpu.run(sim::usec(stack_.costs().syscall_us), ctx.acct, ctx.prio);
  ++stats_.reads;

  while (rcv_.empty()) {
    if (tp_->fin_received() || tp_->state() == net::TcpState::kClosed) co_return 0;
    co_await readable_.wait();
  }

  const std::size_t take = std::min(dst.total_len(), rcv_.cc());
  // soreceive span: data available -> bytes in place in the user buffer
  // (copy-out DMA drain and unpin included; the blocking wait above is not).
  std::uint64_t tel_key = 0;
  if (auto* tel = env.telemetry) {
    tel_key = tel->next_key();
    tel->span_begin(telemetry::Stage::kSoreceive, env.tel_pid, tel_key,
                    tp_->flow_id());
  }
  co_await env.cpu.run(sim::usec(stack_.costs().soreceive_chunk_us), ctx.acct,
                       ctx.prio);
  const std::size_t got = co_await deliver_bytes(p, ctx, rcv_, dst, take);

  if (rx_sync_.outstanding() > 0) {
    // Copy semantics: the read returns once the incoming data is in place;
    // the last copy-out's end-of-DMA interrupt reschedules us (§4.4.2).
    co_await rx_sync_.drain();
    co_await env.cpu.run(sim::usec(stack_.costs().intr_us), env.intr_acct,
                         sim::Priority::Interrupt);
    co_await env.cpu.run(sim::usec(stack_.costs().wakeup_us), ctx.acct, ctx.prio);
  }
  // Release this read's pins (lazy cache keeps them; eager mode unpins).
  for (const auto& u : pinned_rx_) {
    const std::size_t quantum = 32 * 1024;
    for (const auto& v : u.iov) {
      for (std::size_t off = 0; off < v.len; off += quantum) {
        const std::size_t n = std::min(quantum, v.len - off);
        co_await env.pin_cache.release(p.as, v.base + off, n, ctx.acct, ctx.prio);
      }
    }
  }
  pinned_rx_.clear();
  if (tel_key != 0) {
    if (auto* tel = env.telemetry)
      tel->span_end(telemetry::Stage::kSoreceive, tel_key);
  }

  stats_.bytes_received += got;
  co_await tp_->window_update(ctx);
  co_return got;
}

sim::Task<Socket::RecvFromResult> Socket::recvfrom(ProcCtx& p, mem::Uio dst) {
  assert(proto_ == Proto::kUdp);
  auto& env = stack_.env();
  KernCtx ctx{p.sys_acct, p.prio};
  co_await env.cpu.run(sim::usec(stack_.costs().syscall_us), ctx.acct, ctx.prio);
  ++stats_.reads;

  while (dgrams_.empty()) co_await readable_.wait();
  Datagram d = dgrams_.front();
  dgrams_.pop_front();

  co_await env.cpu.run(sim::usec(stack_.costs().soreceive_chunk_us), ctx.acct,
                       ctx.prio);

  // Stage the record through a private sockbuf so datagram delivery reuses
  // the stream delivery machinery (mixed regular/WCAB chains included).
  net::Sockbuf tmp(SIZE_MAX);
  tmp.set_pool(&env.pool);
  for (Mbuf* m = d.data; m != nullptr; m = m->next) m->clear_flags(mbuf::kMPktHdr);
  tmp.append(d.data);
  const std::size_t take = std::min(dst.total_len(), tmp.cc());
  const std::size_t got = co_await deliver_bytes(p, ctx, tmp, dst, take);
  // Any tail beyond the user buffer is discarded (datagram semantics);
  // Sockbuf's destructor frees it.

  if (rx_sync_.outstanding() > 0) {
    co_await rx_sync_.drain();
    co_await env.cpu.run(sim::usec(stack_.costs().intr_us), env.intr_acct,
                         sim::Priority::Interrupt);
    co_await env.cpu.run(sim::usec(stack_.costs().wakeup_us), ctx.acct, ctx.prio);
  }
  for (const auto& u : pinned_rx_) {
    const std::size_t quantum = 32 * 1024;
    for (const auto& v : u.iov) {
      for (std::size_t off = 0; off < v.len; off += quantum) {
        const std::size_t n = std::min(quantum, v.len - off);
        co_await env.pin_cache.release(p.as, v.base + off, n, ctx.acct, ctx.prio);
      }
    }
  }
  pinned_rx_.clear();

  stats_.bytes_received += got;
  co_return RecvFromResult{got, d.src, d.sport};
}

}  // namespace nectar::socket
