// Listener: multi-connection accept on top of the single-connection
// TcpConnection primitive.
//
// A Listener keeps one embryonic socket in LISTEN state; accept() waits for
// it to become established, replaces it with a fresh listener, and hands the
// established socket to the caller. A SYN arriving in the (zero-time, but
// nonzero-event) gap between establishment and re-listen is recovered by the
// client's SYN retransmission, which approximates a backlog of 1.
#pragma once

#include "socket/socket.h"

namespace nectar::socket {

class Listener {
 public:
  Listener(net::NetStack& stack, std::uint16_t port, SocketOptions opts = {})
      : stack_(stack), port_(port), opts_(opts) {
    rearm();
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Await the next established connection. Returns nullptr if the listener
  // socket closed without establishing. The replacement listener can only be
  // armed after the embryonic socket leaves LISTEN (it owns the port until
  // the SYN moves it to the full-tuple demux).
  sim::Task<std::unique_ptr<Socket>> accept() {
    std::unique_ptr<Socket> sock = std::move(pending_);
    const bool ok = co_await sock->tcp().wait_established();
    rearm();
    if (!ok) co_return nullptr;
    co_return sock;
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void rearm() {
    pending_ = std::make_unique<Socket>(stack_, Socket::Proto::kTcp, opts_);
    pending_->listen(port_);
  }

  net::NetStack& stack_;
  std::uint16_t port_;
  SocketOptions opts_;
  std::unique_ptr<Socket> pending_;
};

}  // namespace nectar::socket
