// Listener: multi-connection accept on top of the single-connection
// TcpConnection primitive.
//
// A Listener keeps `backlog` embryonic sockets in LISTEN state. The demux
// hands an incoming SYN to the oldest one (NetStack's per-port listen FIFO);
// accept() waits for that socket to establish and arms a replacement, so the
// backlog depth is restored after every accept. A SYN arriving while every
// embryonic socket is consumed — an accept storm deeper than the backlog —
// is counted by the stack as a listen_overflow (the listen-service registry
// below tells it the port is live) and recovered by the client's SYN
// retransmission.
#pragma once

#include <deque>

#include "socket/socket.h"

namespace nectar::socket {

class Listener {
 public:
  Listener(net::NetStack& stack, std::uint16_t port, SocketOptions opts = {},
           int backlog = 1)
      : stack_(stack), port_(port), opts_(opts),
        backlog_(backlog < 1 ? 1 : static_cast<std::size_t>(backlog)) {
    // Registered for the Listener's lifetime: lets the stack tell "SYN for a
    // dead port" (no_port) from "SYN for a live service whose backlog is
    // exhausted" (listen_overflows).
    stack_.listen_service_register(0, port_);
    while (pending_.size() < backlog_) rearm();
  }
  ~Listener() { stack_.listen_service_unregister(0, port_); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Await the next established connection. Returns nullptr if the listener
  // socket closed without establishing. Embryonic sockets establish in FIFO
  // order (the demux always feeds the oldest), so waiting on the front is
  // waiting on the next connection.
  sim::Task<std::unique_ptr<Socket>> accept() {
    std::unique_ptr<Socket> sock = std::move(pending_.front());
    pending_.pop_front();
    const bool ok = co_await sock->tcp().wait_established();
    rearm();
    if (!ok) co_return nullptr;
    co_return sock;
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::size_t backlog() const noexcept { return backlog_; }

  // True when accept() would return without blocking: the oldest embryonic
  // socket has completed (or given up on) its handshake. Readiness probe for
  // the wload shim's wpoll.
  [[nodiscard]] bool accept_ready() const noexcept {
    if (pending_.empty()) return false;
    const auto& tp = pending_.front()->tcp();
    return tp.ever_established() || tp.state() == net::TcpState::kClosed;
  }

 private:
  void rearm() {
    auto s = std::make_unique<Socket>(stack_, Socket::Proto::kTcp, opts_);
    s->listen(port_);
    pending_.push_back(std::move(s));
  }

  net::NetStack& stack_;
  std::uint16_t port_;
  SocketOptions opts_;
  std::size_t backlog_;
  std::deque<std::unique_ptr<Socket>> pending_;
};

}  // namespace nectar::socket
