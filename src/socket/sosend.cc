// sosend: the transmit half of the user socket API.
#include <cassert>

#include "overload/overload.h"
#include "socket/socket.h"
#include "telemetry/telemetry.h"

namespace nectar::socket {

using mbuf::Mbuf;
using net::KernCtx;

bool Socket::single_copy_eligible(const mem::Uio& data, net::IpAddr dst,
                                  std::size_t len) {
  if (opts_.policy == CopyPolicy::kNeverSingleCopy) return false;
  auto route = stack_.routes().lookup(dst);
  if (!route || !route->ifp->single_copy()) return false;
  if (!data.word_aligned()) {
    // §4.5: the CAB DMA engines require word-aligned host addresses; the
    // traditional path handles unaligned accesses.
    ++stats_.unaligned_fallbacks;
    return false;
  }
  if (opts_.policy == CopyPolicy::kAlwaysSingleCopy) return true;
  return len >= opts_.single_copy_threshold;
}

// Single-copy transmit staging (§2.2): pin+map one packet's worth in
// application context, then copy it outboard immediately — "decisions about
// partitioning of user data into packets must be made before the data is
// transferred out of user space". The completion appends an M_WCAB mbuf to
// the send buffer and kicks TCP; the actual (re)transmission is always a
// header-rewrite SDMA plus MDMA against this staged packet.
sim::Task<void> Socket::append_single_copy(ProcCtx& p, KernCtx ctx,
                                           const mem::Uio& chunk) {
  auto& env = stack_.env();
  auto route = stack_.routes().lookup(tp_->key().faddr);
  net::Ifnet* drv = route ? route->ifp : nullptr;
  if (drv == nullptr || !drv->single_copy())
    throw std::logic_error("sosend: single-copy append without a CAB route");
  const std::size_t header_space = drv->tx_header_space();
  const std::size_t mss = tp_->mss();

  const std::size_t total = chunk.total_len();
  for (std::size_t off = 0; off < total;) {
    // Large-segment offload: stage up to tx_tso_segs() wire MTUs as one
    // descriptor — one pin pass, one staging SDMA, one send-buffer mbuf, and
    // later one MDMA doorbell; the adaptor cuts it into wire segments.
    // Re-read per packet: degradation can drop the fan-out to 1 mid-write.
    std::size_t segs = std::max<std::size_t>(1, drv->tx_tso_segs());
    // Autosizing: never fan out wider than the peer's advertised window can
    // cover. SYN segments carry unscaled 16-bit windows, so right after the
    // handshake snd_wnd caps at 64K; a multi-MTU descriptor larger than that
    // could only leave via a persist probe (WCAB packets send whole).
    if (segs > 1) {
      const std::size_t wnd_segs = std::max<std::size_t>(1, tp_->snd_wnd() / mss);
      segs = std::min(segs, wnd_segs);
    }
    const std::size_t plen = std::min(mss * segs, total - off);
    mem::Uio pdata = chunk.slice(off, plen);
    // Pin + map in app context, one packet at a time (§4.4.1, §7.3). The
    // exact ranges are recorded so release is page-for-page symmetric.
    for (const auto& v : pdata.iov)
      co_await env.pin_cache.acquire(p.as, v.base, v.len, ctx.acct, ctx.prio);
    pinned_tx_.push_back(pdata);

    staged_tx_ += plen;
    tx_sync_.add(static_cast<int>(plen));
    const std::uint64_t id = stage_base_ + stage_q_.size();
    // sosend span: staging posted -> WCAB appended to the send buffer (the
    // in-order prefix rule means a slot can close well after its DMA).
    std::uint64_t tel_key = 0;
    if (auto* tel = env.telemetry) {
      tel_key = tel->next_key();
      tel->span_begin(telemetry::Stage::kSosend, env.tel_pid, tel_key,
                      tp_->flow_id());
    }
    stage_q_.push_back(StagedSlot{plen, false, {}, tel_key});
    Socket* self = this;
    co_await drv->copy_in(ctx, std::move(pdata), header_space,
                          [self, id](mbuf::Wcab w) { self->stage_complete(id, w); },
                          /*seg_stride=*/segs > 1 ? mss : 0);
    off += plen;
  }
}

// Staging SDMA completion. Completions can arrive out of staging order (the
// driver retries a failed transfer behind packets posted after it), but the
// send buffer is a byte stream: park the WCAB in its slot and append only the
// in-order prefix.
void Socket::stage_complete(std::uint64_t id, mbuf::Wcab w) {
  auto& e = stack_.env();
  StagedSlot& slot = stage_q_[static_cast<std::size_t>(id - stage_base_)];
  slot.ready = true;
  slot.w = w;
  bool appended = false;
  while (!stage_q_.empty() && stage_q_.front().ready) {
    StagedSlot s = stage_q_.front();
    stage_q_.pop_front();
    ++stage_base_;
    mbuf::UioWcabHdr hdr;
    hdr.sync = &tx_sync_;
    Mbuf* wm = e.pool.get_wcab(s.w, s.plen, hdr, false);
    snd_.append(wm);
    staged_tx_ -= s.plen;
    tx_sync_.done(static_cast<int>(s.plen));
    if (s.tel_key != 0) {
      if (auto* tel = e.telemetry)
        tel->span_end(telemetry::Stage::kSosend, s.tel_key);
    }
    appended = true;
  }
  if (appended) {
    // End-of-DMA context: hand the new packet(s) to TCP.
    net::KernCtx ictx{e.intr_acct, sim::Priority::Kernel};
    sim::spawn(tp_->send_ready(ictx));
  }
}

// Release exactly the ranges staging pinned (asymmetric quanta would corrupt
// the per-page pin counts).
sim::Task<void> Socket::release_pins(ProcCtx& p, KernCtx ctx, const mem::Uio& data) {
  (void)data;
  auto& env = stack_.env();
  std::vector<mem::Uio> ranges;
  ranges.swap(pinned_tx_);
  for (const auto& u : ranges) {
    for (const auto& v : u.iov)
      co_await env.pin_cache.release(p.as, v.base, v.len, ctx.acct, ctx.prio);
  }
}

sim::Task<void> Socket::append_copy(ProcCtx& p, KernCtx ctx, const mem::Uio& chunk,
                                    Mbuf** out_chain) {
  (void)p;
  auto& env = stack_.env();
  const std::size_t len = chunk.total_len();
  // The traditional path: user -> kernel buffer copy, at copy bandwidth.
  co_await env.cpu.run(
      sim::transfer_time(static_cast<std::int64_t>(len), stack_.costs().copy_bw_bps),
      ctx.acct, ctx.prio);

  Mbuf* head = nullptr;
  Mbuf** link = &head;
  Mbuf* cur = nullptr;
  for (const auto& v : chunk.iov) {
    auto src = chunk.space->read_view(v.base, v.len);
    std::size_t off = 0;
    while (off < v.len) {
      if (cur == nullptr || cur->trailing_space() == 0) {
        cur = env.pool.get_cluster(false);
        *link = cur;
        link = &cur->next;
      }
      const std::size_t take = std::min(v.len - off, cur->trailing_space());
      cur->append(src.subspan(off, take));
      off += take;
    }
  }
  *out_chain = head;
  co_return;
}

sim::Task<std::size_t> Socket::send(ProcCtx& p, mem::Uio data) {
  assert(proto_ == Proto::kTcp);
  auto& env = stack_.env();
  KernCtx ctx{p.sys_acct, p.prio, tp_->flow_id()};
  co_await env.cpu.run(sim::usec(stack_.costs().syscall_us), ctx.acct, ctx.prio);
  ++stats_.writes;

  const std::size_t total = data.total_len();
  bool sc = single_copy_eligible(data, tp_->key().faddr, total);

  // §4.5 transmit fix-up: "if a write starts at an address that is a 16 bit
  // boundary (but not a 32 bit boundary), we can send a first packet of 16
  // bits, which will have to be copied, but the remainder of the data can be
  // DMAed since it is now word aligned."
  std::size_t fixup = 0;
  if (!sc && opts_.tx_align_fixup &&
      opts_.policy != CopyPolicy::kNeverSingleCopy && data.iov.size() == 1 &&
      data.iov[0].base % 4 != 0 && total >= opts_.single_copy_threshold) {
    auto route = stack_.routes().lookup(tp_->key().faddr);
    if (route && route->ifp->single_copy()) {
      fixup = 4 - static_cast<std::size_t>(data.iov[0].base % 4);
      sc = true;  // the remainder goes single-copy
      ++stats_.align_fixups;
    }
  }
  if (sc) ++stats_.single_copy_writes;
  else ++stats_.copy_writes;

  std::size_t done = 0;
  if (fixup > 0) {
    // The short unaligned prefix travels the copy path as its own packet.
    Mbuf* prefix = nullptr;
    co_await append_copy(p, ctx, data.slice(0, fixup), &prefix);
    while (snd_.space() <= staged_tx_) {
      if (tp_->state() == net::TcpState::kClosed) co_return done;
      co_await writable_.wait();
    }
    snd_.append(prefix);
    co_await tp_->send_ready(ctx);
    done = fixup;
  }
  while (done < total) {
    // Effective space counts data already staged outboard but not yet
    // appended (its completion will consume send-buffer space).
    while (snd_.space() <= staged_tx_) {
      if (tp_->state() == net::TcpState::kClosed) co_return done;
      co_await writable_.wait();
    }
    std::size_t chunk_len = std::min(total - done, snd_.space() - staged_tx_);
    if (sc && chunk_len < total - done) {
      // Never cut a single-copy write off a word boundary: the next chunk's
      // base must stay 32-bit aligned for the SDMA (§4.5). The final chunk
      // may be any length — nothing follows it.
      chunk_len &= ~std::size_t{3};
      if (chunk_len == 0) {
        if (tp_->state() == net::TcpState::kClosed) co_return done;
        co_await writable_.wait();
        continue;
      }
    }
    co_await env.cpu.run(sim::usec(stack_.costs().sosend_chunk_us), ctx.acct,
                         ctx.prio);
    mem::Uio chunk = data.slice(done, chunk_len);
    // The interface can lose single-copy capability mid-write (graceful
    // degradation drops kCapSingleCopy while the adaptor is unhealthy), so
    // re-check per chunk: a chunk that finds the capability gone rides the
    // traditional copy path, while `sc` still runs the tail drain/unpin for
    // whatever earlier chunks staged outboard.
    bool sc_chunk = sc;
    if (sc_chunk) {
      auto route = stack_.routes().lookup(tp_->key().faddr);
      if (!route || !route->ifp->single_copy()) sc_chunk = false;
    }
    // Overload descriptor gate: while NetworkMemory or the DMA queues sit
    // above their watermarks, new chunks ride the copy path instead of
    // staging more outboard data — the sockbuf then fills at TCP's pace and
    // the space-wait above becomes sendbuf pushback on the writer.
    if (sc_chunk && env.overload != nullptr &&
        !env.overload->admit_single_copy()) {
      sc_chunk = false;
      ++stats_.overload_copy_fallbacks;
    }
    if (sc_chunk) {
      co_await append_single_copy(p, ctx, chunk);
    } else {
      Mbuf* chain = nullptr;
      co_await append_copy(p, ctx, chunk, &chain);
      snd_.append(chain);
      co_await tp_->send_ready(ctx);
    }
    done += chunk_len;
  }

  if (sc) {
    // Copy semantics (§4.4.2): return only after every byte is outboard.
    // The final SDMA's end-of-DMA interrupt wakes us (charged as interrupt
    // work plus the reschedule).
    co_await tx_sync_.drain();
    co_await env.cpu.run(sim::usec(stack_.costs().intr_us), env.intr_acct,
                         sim::Priority::Interrupt);
    co_await env.cpu.run(sim::usec(stack_.costs().wakeup_us), ctx.acct, ctx.prio);
    co_await release_pins(p, ctx, data);
  }
  stats_.bytes_sent += total;
  co_return total;
}

sim::Task<std::size_t> Socket::sendto(ProcCtx& p, mem::Uio data, net::IpAddr dst,
                                      std::uint16_t dport) {
  assert(proto_ == Proto::kUdp);
  auto& env = stack_.env();
  KernCtx ctx{p.sys_acct, p.prio};
  co_await env.cpu.run(sim::usec(stack_.costs().syscall_us), ctx.acct, ctx.prio);
  co_await env.cpu.run(sim::usec(stack_.costs().sosend_chunk_us), ctx.acct, ctx.prio);
  ++stats_.writes;

  const std::size_t total = data.total_len();
  if (net::kUdpHdrLen + total > 0xffff - net::kIpHdrLen)
    throw std::invalid_argument("sendto: datagram exceeds the IPv4 maximum");
  const net::IpAddr src = stack_.source_addr_for(dst);
  const bool sc = single_copy_eligible(data, dst, total);

  Mbuf* chain = nullptr;
  if (sc) {
    ++stats_.single_copy_writes;
    const std::size_t quantum = 32 * 1024;
    for (const auto& v : data.iov) {
      for (std::size_t off = 0; off < v.len; off += quantum) {
        const std::size_t n = std::min(quantum, v.len - off);
        co_await env.pin_cache.acquire(p.as, v.base + off, n, ctx.acct, ctx.prio);
        mem::Uio pinned;
        pinned.space = data.space;
        pinned.iov.push_back(mem::UioVec{v.base + off, n});
        pinned_tx_.push_back(std::move(pinned));
      }
    }
    tx_sync_.add(static_cast<int>(total));
    mbuf::UioWcabHdr hdr;
    hdr.sync = &tx_sync_;
    chain = env.pool.get_uio(data, total, hdr, false);
  } else {
    ++stats_.copy_writes;
    co_await append_copy(p, ctx, data, &chain);
  }

  co_await stack_.udp().output(ctx, chain, src, uport_, dst, dport,
                               opts_.udp_checksum);

  if (sc) {
    co_await tx_sync_.drain();
    co_await env.cpu.run(sim::usec(stack_.costs().intr_us), env.intr_acct,
                         sim::Priority::Interrupt);
    co_await env.cpu.run(sim::usec(stack_.costs().wakeup_us), ctx.acct, ctx.prio);
    co_await release_pins(p, ctx, data);
  }
  stats_.bytes_sent += total;
  co_return total;
}

}  // namespace nectar::socket
