// Host-interface taxonomy (paper §6, Table 1; the analysis of [19]).
//
// A host interface is classified by three parameters:
//   * API semantics: copy vs share;
//   * transport checksum placement: header (TCP/UDP) vs trailer;
//   * adaptor architecture: data movement (PIO vs DMA), checksum hardware,
//     and buffering (none, single-packet, outboard).
// The minimum set of per-byte operations on the transmit path follows from
// three facts the paper builds on:
//   1. Copy semantics + reliable transport require the data to survive until
//      acknowledged, so without *outboard* buffering a host copy is
//      unavoidable (single-packet buffering is not retransmission storage).
//   2. A header checksum must be known before the first byte reaches the
//      media, so computing it during the device transfer requires buffering
//      on the adaptor; a trailer checksum can always be appended.
//   3. PIO touches every byte with the CPU anyway, so it can always fold the
//      checksum in; DMA needs checksum hardware.
// Everything else is bookkeeping. (The OCR of Table 1 in our source text is
// scrambled; this module regenerates the table from these rules and the
// recoverable fragments match — see EXPERIMENTS.md.)
#pragma once

#include <string>
#include <vector>

namespace nectar::taxonomy {

enum class Api { kCopy, kShare };
enum class CsumPlace { kHeader, kTrailer };
enum class Movement { kPio, kDma };
enum class Buffering { kNone, kPacket, kOutboard };

enum class Op {
  kCopy,    // host memory-memory copy
  kCopyC,   // copy with checksum folded in
  kReadC,   // separate checksum read pass
  kPio,     // programmed IO transfer
  kPioC,    // PIO with checksum folded in
  kDma,     // DMA transfer
  kDmaC,    // DMA with checksum in hardware
};

[[nodiscard]] const char* op_name(Op op) noexcept;

struct Config {
  Api api = Api::kCopy;
  CsumPlace place = CsumPlace::kHeader;
  Movement movement = Movement::kDma;
  bool hw_checksum = false;
  Buffering buffering = Buffering::kNone;
};

struct Analysis {
  std::vector<Op> transmit;  // per-byte operations, in order
  std::vector<Op> receive;

  // Derived metrics (per byte moved):
  int cpu_touches_tx = 0;   // CPU read/write passes over the data
  int bus_transfers_tx = 0; // memory-bus crossings
  int cpu_touches_rx = 0;
  int bus_transfers_rx = 0;
  bool single_copy_tx = false;  // one transfer, checksum folded in
  bool single_copy_rx = false;
};

// Apply the rules above to one configuration.
[[nodiscard]] Analysis analyze(const Config& c);

// Render a Table 1-style grid (rows: API x placement; columns: buffering x
// movement/checksum) for the given direction ("tx" or "rx").
[[nodiscard]] std::string render_table(bool transmit);

// Short cell text like "Copy_C DMA".
[[nodiscard]] std::string ops_string(const std::vector<Op>& ops);

}  // namespace nectar::taxonomy
