#include "taxonomy/taxonomy.h"

#include <sstream>

namespace nectar::taxonomy {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kCopy: return "Copy";
    case Op::kCopyC: return "Copy_C";
    case Op::kReadC: return "Read_C";
    case Op::kPio: return "PIO";
    case Op::kPioC: return "PIO_C";
    case Op::kDma: return "DMA";
    case Op::kDmaC: return "DMA_C";
  }
  return "?";
}

namespace {

Op transfer_op(Movement m, bool with_csum) {
  if (m == Movement::kPio) return with_csum ? Op::kPioC : Op::kPio;
  return with_csum ? Op::kDmaC : Op::kDma;
}

void tally(const std::vector<Op>& ops, int& cpu, int& bus, bool& single) {
  cpu = 0;
  bus = 0;
  int transfers = 0;
  int copies = 0;
  int reads = 0;
  for (Op op : ops) {
    switch (op) {
      case Op::kCopy:
      case Op::kCopyC:
        cpu += 2;  // read + write
        bus += 2;
        ++copies;
        break;
      case Op::kReadC:
        cpu += 1;
        bus += 1;
        ++reads;
        break;
      case Op::kPio:
      case Op::kPioC:
        cpu += 1;  // the CPU moves every byte
        bus += 1;
        ++transfers;
        break;
      case Op::kDma:
      case Op::kDmaC:
        bus += 1;  // bus only; no CPU touch
        ++transfers;
        break;
    }
  }
  single = (copies == 0 && reads == 0 && transfers == 1);
}

}  // namespace

Analysis analyze(const Config& c) {
  Analysis a;

  // ---- transmit ----
  // Rule 1: copy semantics + reliability force a host copy unless the
  // adaptor buffers whole send windows (outboard buffering).
  const bool host_copy = c.api == Api::kCopy && c.buffering != Buffering::kOutboard;
  // Rule 2: checksum insertion into a *header* during the device transfer
  // needs adaptor buffering; trailers append.
  const bool insert_ok =
      c.place == CsumPlace::kTrailer || c.buffering != Buffering::kNone;
  // Rule 3: PIO folds the checksum for free; DMA needs hardware.
  const bool xfer_csum = c.movement == Movement::kPio || c.hw_checksum;

  if (host_copy) {
    if (xfer_csum && insert_ok) {
      a.transmit = {Op::kCopy, transfer_op(c.movement, true)};
    } else {
      a.transmit = {Op::kCopyC, transfer_op(c.movement, false)};
    }
  } else {
    if (xfer_csum && insert_ok) {
      a.transmit = {transfer_op(c.movement, true)};
    } else {
      a.transmit = {Op::kReadC, transfer_op(c.movement, false)};
    }
  }

  // ---- receive ----
  // Copy semantics buffer incoming data until the application asks for it:
  // in host memory (no/packet buffering) or outboard. Verification has no
  // insertion constraint, so placement does not matter on this side.
  const bool host_copy_rx =
      c.api == Api::kCopy && c.buffering != Buffering::kOutboard;
  if (host_copy_rx) {
    if (xfer_csum) {
      a.receive = {transfer_op(c.movement, true), Op::kCopy};
    } else {
      a.receive = {transfer_op(c.movement, false), Op::kCopyC};
    }
  } else {
    if (xfer_csum) {
      a.receive = {transfer_op(c.movement, true)};
    } else {
      a.receive = {transfer_op(c.movement, false), Op::kReadC};
    }
  }

  tally(a.transmit, a.cpu_touches_tx, a.bus_transfers_tx, a.single_copy_tx);
  tally(a.receive, a.cpu_touches_rx, a.bus_transfers_rx, a.single_copy_rx);
  return a;
}

std::string ops_string(const std::vector<Op>& ops) {
  std::string s;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i != 0) s += ' ';
    s += op_name(ops[i]);
  }
  return s;
}

std::string render_table(bool transmit) {
  std::ostringstream os;
  struct Col {
    Buffering buf;
    Movement mv;
    bool hw;
    const char* label;
  };
  const Col cols[] = {
      {Buffering::kNone, Movement::kPio, false, "PIO"},
      {Buffering::kNone, Movement::kDma, false, "DMA"},
      {Buffering::kNone, Movement::kDma, true, "DMA+C"},
      {Buffering::kPacket, Movement::kPio, false, "PIO"},
      {Buffering::kPacket, Movement::kDma, false, "DMA"},
      {Buffering::kPacket, Movement::kDma, true, "DMA+C"},
      {Buffering::kOutboard, Movement::kPio, false, "PIO"},
      {Buffering::kOutboard, Movement::kDma, false, "DMA"},
      {Buffering::kOutboard, Movement::kDma, true, "DMA+C"},
  };
  struct Row {
    Api api;
    CsumPlace place;
    const char* label;
  };
  const Row rows[] = {
      {Api::kCopy, CsumPlace::kHeader, "Copy  Header "},
      {Api::kCopy, CsumPlace::kTrailer, "Copy  Trailer"},
      {Api::kShare, CsumPlace::kHeader, "Share Header "},
      {Api::kShare, CsumPlace::kTrailer, "Share Trailer"},
  };

  const int w = 14;
  os << "                 | No buffering" << std::string(3 * w - 13, ' ')
     << "| Packet buffering" << std::string(3 * w - 17, ' ')
     << "| Outboard buffering\n";
  os << "  API   Checksum |";
  for (const auto& col : cols) {
    std::string lab = col.label;
    os << ' ' << lab << std::string(w - 2 - lab.size(), ' ') << ' ';
  }
  os << "\n";
  os << std::string(17 + 9 * w, '-') << "\n";
  for (const auto& row : rows) {
    os << "  " << row.label << "  |";
    for (const auto& col : cols) {
      Config c;
      c.api = row.api;
      c.place = row.place;
      c.movement = col.mv;
      c.hw_checksum = col.hw;
      c.buffering = col.buf;
      const Analysis a = analyze(c);
      std::string cell = ops_string(transmit ? a.transmit : a.receive);
      if ((transmit ? a.single_copy_tx : a.single_copy_rx)) cell += " *";
      os << ' ' << cell << std::string(cell.size() < std::size_t(w - 2)
                                           ? w - 2 - cell.size()
                                           : 1,
                                       ' ')
         << ' ';
    }
    os << "\n";
  }
  os << "\n  (* = single-copy architecture: one data transfer, checksum folded in)\n";
  return os.str();
}

}  // namespace nectar::taxonomy
