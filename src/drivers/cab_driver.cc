#include "drivers/cab_driver.h"

#include "net/ip.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace nectar::drivers {

using mbuf::Mbuf;
using net::KernCtx;

hippi::Addr CabDriver::resolve(net::IpAddr next_hop) const {
  auto it = neighbors_.find(next_hop);
  if (it == neighbors_.end())
    throw std::out_of_range("CabDriver: no HIPPI neighbour for next hop");
  return it->second;
}

sim::Task<void> CabDriver::output(KernCtx ctx, Mbuf* pkt, net::IpAddr next_hop) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);

  // Classify the data portion.
  bool has_wcab = false;
  for (Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kWcab) has_wcab = true;
  }
  if (has_wcab) {
    co_await output_rewrite(ctx, pkt, next_hop);
    co_return;
  }

  // Fresh packet: HIPPI header + full SDMA into a new outboard buffer.
  hippi::FrameHeader fh;
  fh.dst = resolve(next_hop);
  fh.src = dev_.addr();
  fh.type = hippi::kTypeIp;
  fh.payload_len = static_cast<std::uint32_t>(pkt->pkthdr.len);
  Mbuf* m0 = mbuf::m_prepend(pkt, static_cast<int>(hippi::kHeaderSize));
  hippi::write_header({m0->data(), hippi::kHeaderSize}, fh);

  const auto total = static_cast<std::size_t>(m0->pkthdr.len);
  auto handle = dev_.nm().alloc(total);
  if (!handle) {
    ++drv_stats.tx_no_memory;
    ++if_stats.oerrors;
    env.pool.free_chain(m0);
    co_return;
  }

  cab::SdmaRequest req;
  req.dir = cab::SdmaRequest::Dir::kToCab;
  req.handle = *handle;
  req.cab_off = 0;
  req.flow = m0->pkthdr.flow;
  std::size_t data_start = 0;  // offset of the first M_UIO byte in the packet
  bool before_data = true;
  for (Mbuf* m = m0; m != nullptr; m = m->next) {
    switch (m->type()) {
      case mbuf::MbufType::kData:
        if (before_data) data_start += static_cast<std::size_t>(m->len());
        req.segs.push_back(cab::SdmaSeg{0, m->span()});
        break;
      case mbuf::MbufType::kUio: {
        before_data = false;
        const mem::Uio& u = m->uio();
        if (!u.word_aligned())
          throw std::logic_error(
              "CabDriver: misaligned M_UIO reached the driver (socket-layer bug)");
        for (const auto& v : u.iov) {
          req.segs.push_back(
              cab::SdmaSeg{v.base, u.space->write_view(v.base, v.len)});
        }
        break;
      }
      case mbuf::MbufType::kWcab:
        throw std::logic_error("CabDriver: WCAB in fresh-packet path");
    }
  }

  if (m0->pkthdr.csum_tx.offload) {
    req.csum_enable = true;
    // Transport offsets are relative to the IP header; add the link header.
    req.skip_words = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.skip_words +
                                                hippi::kHeaderSize / 4);
    req.csum_offset = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.csum_offset +
                                                 hippi::kHeaderSize);
  }

  ++drv_stats.tx_fresh;
  ++if_stats.opackets;
  if_stats.obytes += total;

  const cab::Handle h = *handle;
  cab::CabDevice* dev = &dev_;
  // The mbuf chain must stay alive until the SDMA engine reads it.
  Mbuf* chain = m0;
  const std::size_t dstart = data_start;
  const std::uint32_t flow = m0->pkthdr.flow;
  req.on_complete = [this, dev, h, chain, total, dstart,
                     flow](const cab::SdmaRequest&) {
    if (chain->pkthdr.on_outboarded) {
      mbuf::Wcab w;
      w.owner = dev;
      w.handle = h;
      // dstart already counts every header byte (incl. the link header, since
      // it was prepended before the scan).
      w.data_off = static_cast<std::uint32_t>(dstart);
      w.valid = static_cast<std::uint32_t>(total - dstart);
      chain->pkthdr.on_outboarded(w);
    }
    chain->pool().free_chain(chain);
    // Media transfer chains directly off SDMA completion (§2.2). The MDMA
    // completion drops the driver's buffer reference; no host interrupt is
    // needed (TCP's ACK confirms delivery).
    cab::MdmaXmit::Request mr;
    mr.handle = h;
    mr.len = total;
    mr.flow = flow;
    mr.on_complete = [dev, h] { dev->nm().release(h); };
    dev->mdma_xmit().post(mr);
  };

  if (!dev_.sdma().post(std::move(req))) {
    ++if_stats.oerrors;
    dev_.nm().release(h);
    env.pool.free_chain(m0);
  }
  co_return;
}

sim::Task<void> CabDriver::output_rewrite(KernCtx ctx, Mbuf* pkt,
                                          net::IpAddr next_hop) {
  (void)ctx;
  auto& env = stack()->env();
  // Expect: header mbufs (regular) followed by exactly one WCAB mbuf whose
  // data_off equals the total header length (link + IP + transport). This
  // invariant is guaranteed by TCP's segment-boundary rule for retransmits.
  std::size_t hdr_len = 0;
  Mbuf* wm = nullptr;
  for (Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kData) {
      if (wm != nullptr)
        throw std::logic_error("CabDriver: data after WCAB in retransmit");
      hdr_len += static_cast<std::size_t>(m->len());
    } else if (m->type() == mbuf::MbufType::kWcab) {
      if (wm != nullptr)
        throw std::logic_error("CabDriver: multiple WCAB mbufs in one packet");
      wm = m;
    } else {
      throw std::logic_error("CabDriver: UIO mixed with WCAB in one packet");
    }
  }
  assert(wm != nullptr);
  const mbuf::Wcab w = wm->wcab();
  if (w.data_off != hdr_len + hippi::kHeaderSize) {
    std::fprintf(stderr, "CabDriver mismatch: data_off=%u hdr_len=%zu wm_len=%d valid=%u pkthdr_len=%d\n",
                 w.data_off, hdr_len, wm->len(), w.valid, pkt->pkthdr.len);
    throw std::logic_error("CabDriver: retransmit does not match outboard packet");
  }

  hippi::FrameHeader fh;
  fh.dst = resolve(next_hop);
  fh.src = dev_.addr();
  fh.type = hippi::kTypeIp;
  fh.payload_len = static_cast<std::uint32_t>(pkt->pkthdr.len);
  Mbuf* m0 = mbuf::m_prepend(pkt, static_cast<int>(hippi::kHeaderSize));
  hippi::write_header({m0->data(), hippi::kHeaderSize}, fh);

  const std::size_t total = w.data_off + wm->len();

  cab::SdmaRequest req;
  req.dir = cab::SdmaRequest::Dir::kToCab;
  req.handle = w.handle;
  req.cab_off = 0;
  req.flow = m0->pkthdr.flow;
  req.header_rewrite = true;
  for (Mbuf* m = m0; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kData)
      req.segs.push_back(cab::SdmaSeg{0, m->span()});
  }
  if (!m0->pkthdr.csum_tx.offload)
    throw std::logic_error("CabDriver: WCAB retransmit requires outboard checksum");
  req.csum_enable = true;
  req.skip_words = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.skip_words +
                                              hippi::kHeaderSize / 4);
  req.csum_offset = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.csum_offset +
                                               hippi::kHeaderSize);

  ++drv_stats.tx_rewrite;
  ++if_stats.opackets;
  if_stats.obytes += total;

  const cab::Handle h = w.handle;
  cab::CabDevice* dev = &dev_;
  dev_.outboard_retain(h);  // keep alive through SDMA + MDMA
  Mbuf* chain = m0;
  const std::uint32_t flow = m0->pkthdr.flow;
  req.on_complete = [dev, h, chain, total, flow](const cab::SdmaRequest&) {
    chain->pool().free_chain(chain);  // drops the packet's own WCAB reference
    cab::MdmaXmit::Request mr;
    mr.handle = h;
    mr.len = total;
    mr.flow = flow;
    mr.on_complete = [dev, h] { dev->nm().release(h); };
    dev->mdma_xmit().post(mr);
  };

  if (!dev_.sdma().post(std::move(req))) {
    ++if_stats.oerrors;
    dev_.outboard_release(h);
    env.pool.free_chain(m0);
  }
  co_return;
}

sim::Task<void> CabDriver::copy_in(KernCtx ctx, mem::Uio data,
                                   std::size_t header_space,
                                   std::function<void(mbuf::Wcab)> done) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  if (!data.word_aligned())
    throw std::logic_error("CabDriver::copy_in: misaligned user data");

  const std::size_t len = data.total_len();
  std::optional<cab::Handle> handle;
  for (int tries = 0; tries < 10000; ++tries) {
    handle = dev_.nm().alloc(header_space + len);
    if (handle) break;
    // Outboard memory recycles as ACKs free retransmit buffers.
    ++drv_stats.tx_no_memory;
    co_await sim::delay(env.sim, sim::usec(500));
  }
  if (!handle) throw std::runtime_error("CabDriver::copy_in: outboard memory stuck");

  cab::SdmaRequest req;
  req.dir = cab::SdmaRequest::Dir::kToCab;
  req.handle = *handle;
  req.cab_off = header_space;
  req.flow = ctx.flow;
  for (const auto& v : data.iov)
    req.segs.push_back(cab::SdmaSeg{v.base, data.space->write_view(v.base, v.len)});
  req.csum_enable = true;
  req.body_sum_only = true;
  req.skip_words = 0;

  cab::CabDevice* dev = &dev_;
  const cab::Handle h = *handle;
  const auto hs = static_cast<std::uint32_t>(header_space);
  const auto dl = static_cast<std::uint32_t>(len);
  auto cb = std::make_shared<std::function<void(mbuf::Wcab)>>(std::move(done));
  req.on_complete = [dev, h, hs, dl, cb](const cab::SdmaRequest&) {
    mbuf::Wcab w;
    w.owner = dev;
    w.handle = h;
    w.data_off = hs;
    w.valid = dl;
    (*cb)(w);
  };
  if (!dev_.sdma().post(std::move(req)))
    throw std::runtime_error("CabDriver::copy_in: SDMA queue exhausted");
}

void CabDriver::handle_recv(cab::RecvDesc&& desc) {
  // Hardware completion context: hand off to an interrupt-priority coroutine.
  sim::spawn(recv_intr(std::move(desc)));
}

sim::Task<void> CabDriver::recv_intr(cab::RecvDesc desc) {
  auto& env = stack()->env();
  KernCtx ctx{env.intr_acct, sim::Priority::Interrupt};
  co_await env.cpu.run(sim::usec(stack()->costs().intr_us), ctx.acct, ctx.prio);

  ++if_stats.ipackets;
  if_stats.ibytes += desc.total_len;

  // Wrap the auto-DMAed head (already host-resident; wrapping is free).
  Mbuf* head = env.pool.get_ext(desc.head.size(), /*pkthdr=*/true);
  head->append(std::span<const std::byte>{desc.head.data(), desc.head.size()});
  head->pkthdr.len = static_cast<int>(desc.total_len);
  head->pkthdr.rx_hw_sum = desc.hw_sum;
  head->pkthdr.rx_hw_sum_valid = true;

  if (desc.handle) {
    ++drv_stats.rx_wcab;
    mbuf::Wcab w;
    w.owner = &dev_;
    w.handle = *desc.handle;  // adopts the allocation reference
    w.data_off = static_cast<std::uint32_t>(desc.head.size());
    w.valid = static_cast<std::uint32_t>(desc.total_len - desc.head.size());
    w.checksum_valid = false;
    mbuf::UioWcabHdr hdr;
    Mbuf* wm = env.pool.get_wcab(w, desc.total_len - desc.head.size(), hdr, false);
    head->next = wm;
  } else {
    ++drv_stats.rx_small;
  }

  // Validate and strip HIPPI framing.
  const hippi::FrameHeader fh = hippi::read_header(head->span());
  if (fh.type != hippi::kTypeIp) {
    env.pool.free_chain(head);
    co_return;
  }
  mbuf::m_adj(head, static_cast<int>(hippi::kHeaderSize));
  co_await stack()->ip().input(ctx, head, this);
}

sim::Task<void> CabDriver::copy_out(KernCtx ctx, const mbuf::Wcab& w,
                                    std::size_t wcab_off, mem::Uio dst,
                                    mbuf::DmaSync* sync) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  ++drv_stats.copyouts;

  cab::SdmaRequest req;
  req.dir = cab::SdmaRequest::Dir::kFromCab;
  req.handle = w.handle;
  req.cab_off = w.data_off + wcab_off;
  req.flow = ctx.flow;
  for (const auto& v : dst.iov) {
    req.segs.push_back(cab::SdmaSeg{v.base, dst.space->write_view(v.base, v.len)});
  }
  // Keep the outboard buffer alive until the DMA executes — the caller is
  // free to drop its mbuf reference immediately.
  dev_.outboard_retain(w.handle);
  cab::CabDevice* dev = &dev_;
  const cab::Handle h = w.handle;
  if (sync != nullptr) sync->add();
  req.on_complete = [sync, dev, h](const cab::SdmaRequest&) {
    dev->outboard_release(h);
    if (sync != nullptr) sync->done();
  };
  if (!dev_.sdma().post(std::move(req)))
    throw std::runtime_error("CabDriver: SDMA queue exhausted on copy_out");
}

sim::Task<void> CabDriver::copy_out_raw(KernCtx ctx, const mbuf::Wcab& w,
                                        std::size_t wcab_off, std::span<std::byte> dst,
                                        mbuf::DmaSync* sync) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  ++drv_stats.copyouts;

  cab::SdmaRequest req;
  req.dir = cab::SdmaRequest::Dir::kFromCab;
  req.handle = w.handle;
  req.cab_off = w.data_off + wcab_off;
  req.flow = ctx.flow;
  req.segs.push_back(cab::SdmaSeg{0, dst});
  dev_.outboard_retain(w.handle);
  cab::CabDevice* dev = &dev_;
  const cab::Handle h = w.handle;
  if (sync != nullptr) sync->add();
  req.on_complete = [sync, dev, h](const cab::SdmaRequest&) {
    dev->outboard_release(h);
    if (sync != nullptr) sync->done();
  };
  if (!dev_.sdma().post(std::move(req)))
    throw std::runtime_error("CabDriver: SDMA queue exhausted on copy_out_raw");
}

}  // namespace nectar::drivers
