#include "drivers/cab_driver.h"

#include "checksum/wire.h"
#include "net/ip.h"
#include "telemetry/telemetry.h"

#include <cassert>
#include <cstdio>
#include <iterator>
#include <stdexcept>

namespace nectar::drivers {

using mbuf::Mbuf;
using net::KernCtx;

namespace {

// Parsed view of a receive descriptor's auto-DMAed head, for the driver's
// coalescing (GRO) decisions. `tcp` marks a plain unfragmented IPv4 TCP
// segment whose frame length is self-consistent; only those may merge.
struct GroSeg {
  bool tcp = false;
  bool verified = false;  // hardware checksum checks out for this segment
  std::uint32_t src = 0, dst = 0;
  std::uint32_t seq = 0, ack = 0;
  std::uint16_t sport = 0, dport = 0, win = 0;
  std::uint8_t flags = 0;
  std::size_t thl = 0;      // transport header length
  std::size_t payload = 0;  // transport payload bytes
};

GroSeg parse_gro(const cab::RecvDesc& d) {
  GroSeg s;
  constexpr std::size_t ip_off = hippi::kHeaderSize;
  constexpr std::size_t tcp_off = ip_off + 20;
  const std::byte* b = d.head.data();
  if (d.head.size() < tcp_off + 20) return s;
  if (wire::load_be16(b + 8) != hippi::kTypeIp) return s;
  if (std::to_integer<std::uint8_t>(b[ip_off]) != 0x45) return s;  // v4, no options
  if ((wire::load_be16(b + ip_off + 6) & 0x3fff) != 0) return s;   // no fragments
  if (std::to_integer<std::uint8_t>(b[ip_off + 9]) != 6) return s;  // TCP only
  const std::size_t ip_total = wire::load_be16(b + ip_off + 2);
  if (d.total_len != ip_off + ip_total) return s;  // truncated / padded frame
  const std::size_t thl =
      static_cast<std::size_t>(std::to_integer<std::uint8_t>(b[tcp_off + 12]) >> 4) * 4;
  if (thl < 20 || 20 + thl > ip_total || d.head.size() < tcp_off + thl) return s;
  s.tcp = true;
  s.src = wire::load_be32(b + ip_off + 12);
  s.dst = wire::load_be32(b + ip_off + 16);
  s.sport = wire::load_be16(b + tcp_off);
  s.dport = wire::load_be16(b + tcp_off + 2);
  s.seq = wire::load_be32(b + tcp_off + 4);
  s.ack = wire::load_be32(b + tcp_off + 8);
  s.flags = std::to_integer<std::uint8_t>(b[tcp_off + 13]);
  s.win = wire::load_be16(b + tcp_off + 14);
  s.thl = thl;
  s.payload = ip_total - 20 - thl;
  // The receive engine's sum covers everything past the HIPPI + IP headers
  // (rx skip = 20 words); folding it against the pseudo-header verifies the
  // segment without the host ever reading the data.
  const std::uint32_t pseudo = net::transport_pseudo_sum(
      s.src, s.dst, 6, static_cast<std::uint16_t>(ip_total - 20));
  s.verified = checksum::fold(pseudo + d.hw_sum) == 0xffff;
  return s;
}

constexpr std::uint8_t kTcpFlagAckOnly = 0x10;

}  // namespace

hippi::Addr CabDriver::resolve(net::IpAddr next_hop) const {
  auto it = neighbors_.find(next_hop);
  if (it == neighbors_.end())
    throw std::out_of_range("CabDriver: no HIPPI neighbour for next hop");
  return it->second;
}

sim::Task<void> CabDriver::output(KernCtx ctx, Mbuf* pkt, net::IpAddr next_hop) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  if (recovery_enabled_) {
    arm_watchdog();
    if (state_ == AdaptorState::kResetting) {
      // The board is mid-reset: drop fast, like a driver whose tx ring is
      // torn down. The transport retransmits once the adaptor is back.
      ++rec_stats.tx_dropped_resetting;
      ++if_stats.oerrors;
      unpin_uio(pkt);
      env.pool.free_chain(pkt);
      co_return;
    }
  }

  // Classify the data portion.
  bool has_wcab = false;
  for (Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kWcab) has_wcab = true;
  }
  if (has_wcab) {
    co_await output_rewrite(ctx, pkt, next_hop);
    co_return;
  }

  // Fresh packet: HIPPI header + full SDMA into a new outboard buffer.
  hippi::FrameHeader fh;
  fh.dst = resolve(next_hop);
  fh.src = dev_.addr();
  fh.type = hippi::kTypeIp;
  fh.payload_len = static_cast<std::uint32_t>(pkt->pkthdr.len);
  Mbuf* m0 = mbuf::m_prepend(pkt, static_cast<int>(hippi::kHeaderSize));
  hippi::write_header({m0->data(), hippi::kHeaderSize}, fh);

  const auto total = static_cast<std::size_t>(m0->pkthdr.len);
  auto handle = dev_.nm().alloc(total);
  if (!handle) {
    ++drv_stats.tx_no_memory;
    ++if_stats.oerrors;
    env.pool.free_chain(m0);
    co_return;
  }

  cab::SdmaRequest req;
  req.dir = cab::SdmaRequest::Dir::kToCab;
  req.handle = *handle;
  req.cab_off = 0;
  req.flow = m0->pkthdr.flow;
  std::size_t data_start = 0;  // offset of the first M_UIO byte in the packet
  bool before_data = true;
  for (Mbuf* m = m0; m != nullptr; m = m->next) {
    switch (m->type()) {
      case mbuf::MbufType::kData:
        if (before_data) data_start += static_cast<std::size_t>(m->len());
        req.segs.push_back(cab::SdmaSeg{0, m->span()});
        break;
      case mbuf::MbufType::kUio: {
        before_data = false;
        const mem::Uio& u = m->uio();
        if (!u.word_aligned())
          throw std::logic_error(
              "CabDriver: misaligned M_UIO reached the driver (socket-layer bug)");
        for (const auto& v : u.iov) {
          req.segs.push_back(
              cab::SdmaSeg{v.base, u.space->write_view(v.base, v.len)});
        }
        break;
      }
      case mbuf::MbufType::kWcab:
        throw std::logic_error("CabDriver: WCAB in fresh-packet path");
    }
  }

  if (m0->pkthdr.csum_tx.offload) {
    req.csum_enable = true;
    // Transport offsets are relative to the IP header; add the link header.
    req.skip_words = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.skip_words +
                                                hippi::kHeaderSize / 4);
    req.csum_offset = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.csum_offset +
                                                 hippi::kHeaderSize);
  }

  ++drv_stats.tx_fresh;
  ++if_stats.opackets;
  if_stats.obytes += total;
  // Degraded windows drop kCapSingleCopy, so traffic that would have been
  // staged as super-segments arrives here pre-cut by the host: count each
  // such wire segment as a forced host segmentation.
  if (offload_enabled_ && oc_.tso_max > 1 && degraded_ != 0)
    ++off_stats.tx_fallback_host_seg;

  const cab::Handle h = *handle;
  cab::CabDevice* dev = &dev_;
  // The mbuf chain must stay alive until the SDMA engine reads it.
  Mbuf* chain = m0;
  const std::size_t dstart = data_start;
  const std::uint32_t flow = m0->pkthdr.flow;
  req.on_complete = [this, dev, h, chain, total, dstart,
                     flow](const cab::SdmaRequest& done) {
    if (done.failed) {
      // Nothing went outboard: unpin the writer's pages, drop the packet
      // (the transport retransmits), release the buffer we allocated.
      ++rec_stats.tx_dma_failed;
      ++if_stats.oerrors;
      unpin_uio(chain);
      chain->pool().free_chain(chain);
      dev->nm().release(h);
      note_dma_failure();
      return;
    }
    if (chain->pkthdr.on_outboarded) {
      mbuf::Wcab w;
      w.owner = dev;
      w.handle = h;
      // dstart already counts every header byte (incl. the link header, since
      // it was prepended before the scan).
      w.data_off = static_cast<std::uint32_t>(dstart);
      w.valid = static_cast<std::uint32_t>(total - dstart);
      chain->pkthdr.on_outboarded(w);
    }
    chain->pool().free_chain(chain);
    // Media transfer chains directly off SDMA completion (§2.2). The MDMA
    // completion drops the driver's buffer reference; no host interrupt is
    // needed (TCP's ACK confirms delivery).
    cab::MdmaXmit::Request mr;
    mr.handle = h;
    mr.len = total;
    mr.flow = flow;
    mr.on_complete = [dev, h] { dev->nm().release(h); };
    dev->mdma_xmit().post(mr);
  };

  if (!dev_.sdma().post(std::move(req))) {
    ++if_stats.oerrors;
    dev_.nm().release(h);
    env.pool.free_chain(m0);
  }
  co_return;
}

sim::Task<void> CabDriver::output_rewrite(KernCtx ctx, Mbuf* pkt,
                                          net::IpAddr next_hop) {
  (void)ctx;
  auto& env = stack()->env();
  // Expect: header mbufs (regular) followed by exactly one WCAB mbuf. The
  // outboard payload normally starts right after the header block
  // (data_off == headers); after a partial acknowledgement of a multi-MTU
  // super-segment the front of the WCAB has been trimmed, so the headers are
  // rewritten at `payload_off` and only the tail goes back on the wire.
  // TCP's segment-boundary rule guarantees the cut never lands mid-header.
  std::size_t hdr_len = 0;
  Mbuf* wm = nullptr;
  for (Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kData) {
      if (wm != nullptr)
        throw std::logic_error("CabDriver: data after WCAB in retransmit");
      hdr_len += static_cast<std::size_t>(m->len());
    } else if (m->type() == mbuf::MbufType::kWcab) {
      if (wm != nullptr)
        throw std::logic_error("CabDriver: multiple WCAB mbufs in one packet");
      wm = m;
    } else {
      throw std::logic_error("CabDriver: UIO mixed with WCAB in one packet");
    }
  }
  assert(wm != nullptr);
  const mbuf::Wcab w = wm->wcab();
  const std::size_t hdr_block = hdr_len + hippi::kHeaderSize;
  if (w.data_off < hdr_block) {
    std::fprintf(stderr, "CabDriver mismatch: data_off=%u hdr_len=%zu wm_len=%d valid=%u pkthdr_len=%d\n",
                 w.data_off, hdr_len, wm->len(), w.valid, pkt->pkthdr.len);
    throw std::logic_error("CabDriver: retransmit does not match outboard packet");
  }
  const std::size_t payload_off = w.data_off - hdr_block;

  hippi::FrameHeader fh;
  fh.dst = resolve(next_hop);
  fh.src = dev_.addr();
  fh.type = hippi::kTypeIp;
  fh.payload_len = static_cast<std::uint32_t>(pkt->pkthdr.len);
  Mbuf* m0 = mbuf::m_prepend(pkt, static_cast<int>(hippi::kHeaderSize));
  hippi::write_header({m0->data(), hippi::kHeaderSize}, fh);

  const std::size_t total = hdr_block + static_cast<std::size_t>(wm->len());

  cab::SdmaRequest req;
  req.dir = cab::SdmaRequest::Dir::kToCab;
  req.handle = w.handle;
  req.cab_off = payload_off;
  req.flow = m0->pkthdr.flow;
  req.header_rewrite = true;
  for (Mbuf* m = m0; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kData)
      req.segs.push_back(cab::SdmaSeg{0, m->span()});
  }
  if (!m0->pkthdr.csum_tx.offload)
    throw std::logic_error("CabDriver: WCAB retransmit requires outboard checksum");
  req.csum_enable = true;
  req.skip_words = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.skip_words +
                                              hippi::kHeaderSize / 4);
  req.csum_offset = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.csum_offset +
                                               hippi::kHeaderSize);

  ++drv_stats.tx_rewrite;
  ++if_stats.opackets;
  if_stats.obytes += total;

  // Large-segment offload: the MDMA engine fans the super-segment out into
  // wire MTUs; the transmit is still one doorbell and one SDMA/MDMA pair.
  std::size_t tso_seg_payload = 0;
  if (m0->pkthdr.csum_tx.tso_seg_payload > 0) {
    tso_seg_payload = m0->pkthdr.csum_tx.tso_seg_payload;
    const std::size_t payload = static_cast<std::size_t>(wm->len());
    if (payload > tso_seg_payload) {
      ++off_stats.tx_super_segs;
      off_stats.tx_wire_segs += (payload + tso_seg_payload - 1) / tso_seg_payload;
      off_stats.tx_tso_bytes += payload;
    }
  }

  const cab::Handle h = w.handle;
  cab::CabDevice* dev = &dev_;
  dev_.outboard_retain(h);  // keep alive through SDMA + MDMA
  Mbuf* chain = m0;
  const std::uint32_t flow = m0->pkthdr.flow;
  req.on_complete = [this, dev, h, chain, total, payload_off, tso_seg_payload,
                     hdr_block, flow](const cab::SdmaRequest& done) {
    if (done.failed) {
      // Header rewrite failed (reset/injected error): the outboard data is
      // intact, so the next RTO retransmission simply tries again.
      ++rec_stats.tx_dma_failed;
      ++if_stats.oerrors;
      chain->pool().free_chain(chain);  // drops the packet's own WCAB reference
      dev->nm().release(h);             // the transmit-path retain above
      note_dma_failure();
      return;
    }
    chain->pool().free_chain(chain);  // drops the packet's own WCAB reference
    cab::MdmaXmit::Request mr;
    mr.handle = h;
    mr.off = payload_off;
    mr.len = total;
    mr.flow = flow;
    if (tso_seg_payload > 0) {
      mr.tso_hdr_len = hdr_block;  // link + IP + transport headers
      mr.tso_seg_payload = tso_seg_payload;
    }
    mr.on_complete = [dev, h] { dev->nm().release(h); };
    dev->mdma_xmit().post(mr);
  };

  if (!dev_.sdma().post(std::move(req))) {
    ++if_stats.oerrors;
    dev_.outboard_release(h);
    env.pool.free_chain(m0);
  }
  co_return;
}

sim::Task<void> CabDriver::copy_in(KernCtx ctx, mem::Uio data,
                                   std::size_t header_space,
                                   std::function<void(mbuf::Wcab)> done,
                                   std::size_t seg_stride) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  if (recovery_enabled_) arm_watchdog();
  if (!data.word_aligned())
    throw std::logic_error("CabDriver::copy_in: misaligned user data");
  if (offload_enabled_ && oc_.tso_max > 1 && tx_tso_segs() == 1)
    ++off_stats.tx_fallback_host_seg;  // degraded: host-side segmentation

  const std::size_t len = data.total_len();
  std::optional<cab::Handle> handle;
  for (int tries = 0; tries < 10000; ++tries) {
    handle = dev_.nm().alloc(header_space + len);
    if (handle) break;
    // Outboard memory recycles as ACKs free retransmit buffers.
    ++drv_stats.tx_no_memory;
    co_await sim::delay(env.sim, sim::usec(500));
  }
  if (!handle) throw std::runtime_error("CabDriver::copy_in: outboard memory stuck");

  auto job = std::make_shared<CopyinJob>();
  if (auto* tel = env.telemetry) {
    job->tel_key = tel->next_key();
    tel->span_begin(telemetry::Stage::kDriverStage, env.tel_pid, job->tel_key,
                    ctx.flow);
  }
  job->req.dir = cab::SdmaRequest::Dir::kToCab;
  job->req.handle = *handle;
  job->req.cab_off = header_space;
  job->req.flow = ctx.flow;
  for (const auto& v : data.iov)
    job->req.segs.push_back(
        cab::SdmaSeg{v.base, data.space->write_view(v.base, v.len)});
  job->req.csum_enable = true;
  job->req.body_sum_only = true;
  job->req.skip_words = 0;
  job->req.seg_stride = static_cast<std::uint16_t>(seg_stride);
  job->done = std::move(done);
  job->handle = *handle;
  job->data_off = static_cast<std::uint32_t>(header_space);
  job->data_len = static_cast<std::uint32_t>(len);
  submit_copyin(std::move(job));
}

void CabDriver::submit_copyin(std::shared_ptr<CopyinJob> job) {
  cab::SdmaRequest r = job->req;  // keep the master copy for reposting
  r.on_complete = [this, job](const cab::SdmaRequest& done) {
    if (!done.failed) {
      if (!job->req.csum_enable) {
        // The data is outboard but the engine could not sum it: compute the
        // body sum in software from the (still pinned) host pages, so WCAB
        // header-rewrite transmissions keep working. Mirror the hardware's
        // slice checkpoints exactly when this is a multi-MTU staging, so a
        // later fan-out produces bit-identical per-segment checksums.
        std::uint32_t sum = 0;
        std::size_t off = 0;
        for (const auto& seg : job->req.segs) {
          sum = checksum::combine(sum, checksum::ones_sum(seg.bytes), off);
          off += seg.bytes.size();
        }
        dev_.nm().set_body_sum(job->handle, sum);
        if (job->req.seg_stride > 0) {
          const std::size_t stride = job->req.seg_stride;
          std::vector<std::uint32_t> slices;
          std::uint32_t cur = 0;
          std::size_t cur_len = 0;
          for (const auto& seg : job->req.segs) {
            std::size_t p = 0;
            while (p < seg.bytes.size()) {
              const std::size_t n =
                  std::min(seg.bytes.size() - p, stride - cur_len);
              cur = checksum::combine(
                  cur, checksum::ones_sum(seg.bytes.subspan(p, n)), cur_len);
              cur_len += n;
              p += n;
              if (cur_len == stride) {
                slices.push_back(cur);
                cur = 0;
                cur_len = 0;
              }
            }
          }
          if (cur_len > 0) slices.push_back(cur);
          dev_.nm().set_seg_sums(job->handle, job->data_off, stride, off,
                                 std::move(slices));
        }
        ++rec_stats.copy_in_sw_csum;
      }
      mbuf::Wcab w;
      w.owner = &dev_;
      w.handle = job->handle;
      w.data_off = job->data_off;
      w.valid = job->data_len;
      if (job->tel_key != 0) {
        if (auto* tel = stack()->env().telemetry)
          tel->span_end(telemetry::Stage::kDriverStage, job->tel_key);
      }
      job->done(w);
      return;
    }
    note_dma_failure();
    if (job->req.csum_enable && dev_.sdma().checksum().failed()) {
      // Parity abort: restage without the engine's checksum path.
      job->req.csum_enable = false;
      job->req.body_sum_only = false;
    }
    ++rec_stats.copy_in_retries;
    stack()->env().sim.after(rc_.dma_retry_delay,
                             [this, job] { submit_copyin(job); });
  };
  if (!dev_.sdma().post(std::move(r))) {
    // Command queue full: space frees as the engine drains (or recovers).
    ++rec_stats.copy_in_retries;
    stack()->env().sim.after(rc_.dma_retry_delay,
                             [this, job] { submit_copyin(job); });
  }
}

void CabDriver::handle_recv(cab::RecvDesc&& desc) {
  if (gro_active()) {
    gro_enqueue(std::move(desc));
    return;
  }
  if (offload_enabled_) ++off_stats.rx_gro_bypass;
  // Hardware completion context: hand off to an interrupt-priority coroutine.
  sim::spawn(recv_intr(std::move(desc)));
}

sim::Task<void> CabDriver::recv_intr(cab::RecvDesc desc) {
  auto& env = stack()->env();
  KernCtx ctx{env.intr_acct, sim::Priority::Interrupt};
  co_await env.cpu.run(sim::usec(stack()->costs().intr_us), ctx.acct, ctx.prio);
  if (recovery_enabled_) arm_watchdog();
  co_await deliver_desc(ctx, std::move(desc));
}

sim::Task<void> CabDriver::deliver_desc(KernCtx ctx, cab::RecvDesc desc) {
  auto& env = stack()->env();
  ++if_stats.ipackets;
  if_stats.ibytes += desc.total_len;

  // With a failed checksum unit the hardware sum is garbage; deliver packets
  // as plain host data and let the transport run its software checksum.
  const bool csum_degraded = (degraded_ & kDegradeCsum) != 0;

  // Wrap the auto-DMAed head (already host-resident; wrapping is free).
  Mbuf* head = env.pool.get_ext(desc.head.size(), /*pkthdr=*/true);
  head->append(std::span<const std::byte>{desc.head.data(), desc.head.size()});
  head->pkthdr.len = static_cast<int>(desc.total_len);
  head->pkthdr.rx_hw_sum = desc.hw_sum;
  head->pkthdr.rx_hw_sum_valid = !csum_degraded;

  if (desc.handle && csum_degraded) {
    // Degraded mode caught a packet with outboard residue (arrived before the
    // autodma window grew): bounce the residue into host memory so the
    // software checksum can read the whole packet, then drop the outboard
    // buffer. This is the host bounce-buffer path of the paper's baseline.
    const std::size_t resid_len = desc.total_len - desc.head.size();
    std::vector<std::byte> resid(resid_len);
    cab::SdmaRequest req;
    req.dir = cab::SdmaRequest::Dir::kFromCab;
    req.handle = *desc.handle;
    req.cab_off = desc.head.size();
    req.segs.push_back(cab::SdmaSeg{0, std::span<std::byte>(resid)});
    bool failed = false;
    mbuf::DmaSync bounce_sync(env.sim);
    bounce_sync.add();
    req.on_complete = [&failed, &bounce_sync](const cab::SdmaRequest& done) {
      failed = done.failed;
      bounce_sync.done();
    };
    if (!dev_.sdma().post(std::move(req)))
      failed = true;
    else
      co_await bounce_sync.drain();
    dev_.nm().release(*desc.handle);
    if (failed) {
      ++rec_stats.rx_bounce_failed;
      env.pool.free_chain(head);
      co_return;
    }
    ++rec_stats.rx_bounced;
    ++drv_stats.rx_small;  // delivered fully host-resident
    Mbuf* rm = env.pool.get_ext(resid.size(), /*pkthdr=*/false);
    rm->append(std::span<const std::byte>{resid.data(), resid.size()});
    head->next = rm;
  } else if (desc.handle) {
    ++drv_stats.rx_wcab;
    mbuf::Wcab w;
    w.owner = &dev_;
    w.handle = *desc.handle;  // adopts the allocation reference
    w.data_off = static_cast<std::uint32_t>(desc.head.size());
    w.valid = static_cast<std::uint32_t>(desc.total_len - desc.head.size());
    w.checksum_valid = false;
    mbuf::UioWcabHdr hdr;
    Mbuf* wm = env.pool.get_wcab(w, desc.total_len - desc.head.size(), hdr, false);
    head->next = wm;
  } else {
    ++drv_stats.rx_small;
  }

  // Validate and strip HIPPI framing.
  const hippi::FrameHeader fh = hippi::read_header(head->span());
  if (fh.type != hippi::kTypeIp) {
    env.pool.free_chain(head);
    co_return;
  }
  mbuf::m_adj(head, static_cast<int>(hippi::kHeaderSize));
  co_await stack()->ip().input(ctx, head, this);
}

// --- receive coalescing (GRO) ------------------------------------------------

void CabDriver::enable_offload(const OffloadConfig& oc) {
  oc_ = oc;
  if (oc_.tso_max < 1) oc_.tso_max = 1;
  offload_enabled_ = true;
}

void CabDriver::gro_enqueue(cab::RecvDesc&& desc) {
  auto& env = stack()->env();
  GroEntry e;
  e.desc = std::move(desc);
  if (auto* tel = env.telemetry) {
    e.tel_key = tel->next_key();
    tel->span_begin(telemetry::Stage::kGroHold, env.tel_pid, e.tel_key);
  }
  gro_q_.push_back(std::move(e));
  ++off_stats.rx_batched_descs;
  if (gro_q_.size() >= oc_.gro_budget) {
    ++off_stats.rx_flush_budget;
    gro_flush();
  } else if (!gro_timer_armed_) {
    gro_timer_armed_ = true;
    gro_timer_ = env.sim.timer_after(oc_.gro_flush_window, [this] {
      gro_timer_armed_ = false;
      if (gro_q_.empty()) return;
      ++off_stats.rx_flush_timer;
      gro_flush();
    });
  }
}

void CabDriver::gro_flush() {
  if (gro_timer_armed_) {
    gro_timer_.cancel();
    gro_timer_armed_ = false;
  }
  std::vector<GroEntry> batch(std::make_move_iterator(gro_q_.begin()),
                              std::make_move_iterator(gro_q_.end()));
  gro_q_.clear();
  ++off_stats.rx_batches;
  gro_pending_.push_back(std::move(batch));
  if (!gro_draining_) {
    gro_draining_ = true;
    sim::spawn(gro_drain());
  }
}

sim::Task<void> CabDriver::gro_drain() {
  while (!gro_pending_.empty()) {
    std::vector<GroEntry> batch = std::move(gro_pending_.front());
    gro_pending_.pop_front();
    co_await recv_batch_intr(std::move(batch));
  }
  gro_draining_ = false;
}

sim::Task<void> CabDriver::recv_batch_intr(std::vector<GroEntry> batch) {
  auto& env = stack()->env();
  KernCtx ctx{env.intr_acct, sim::Priority::Interrupt};
  // The doorbell/interrupt batching win: one interrupt entry/exit + device
  // ack for the whole batch, instead of one per descriptor.
  co_await env.cpu.run(sim::usec(stack()->costs().intr_us), ctx.acct, ctx.prio);
  if (recovery_enabled_) arm_watchdog();

  std::vector<cab::RecvDesc> descs;
  std::vector<GroSeg> segs;
  descs.reserve(batch.size());
  segs.reserve(batch.size());
  for (auto& e : batch) {
    if (e.tel_key != 0) {
      if (auto* tel = env.telemetry)
        tel->span_end(telemetry::Stage::kGroHold, e.tel_key);
    }
    segs.push_back(parse_gro(e.desc));
    if (segs.back().verified) ++off_stats.rx_csum_verified;
    descs.push_back(std::move(e.desc));
  }

  // Walk the batch in arrival order, merging maximal runs of in-sequence
  // same-flow data segments. A sequence hole (loss/reorder), a failed
  // per-segment checksum, any flag beyond plain ACK (PSH/FIN/SYN/RST), or an
  // ack/window change ends the run; the offender is delivered on its own,
  // exactly as the non-coalescing path would.
  std::size_t i = 0;
  while (i < descs.size()) {
    std::size_t j = i + 1;
    const GroSeg a = segs[i];
    if (a.tcp && a.verified && a.payload > 0 && a.flags == kTcpFlagAckOnly) {
      std::uint32_t next_seq = a.seq + static_cast<std::uint32_t>(a.payload);
      std::size_t run_payload = a.payload;
      while (j < descs.size()) {
        const GroSeg& b = segs[j];
        if (!(b.tcp && b.verified && b.payload > 0 &&
              b.flags == kTcpFlagAckOnly && b.src == a.src && b.dst == a.dst &&
              b.sport == a.sport && b.dport == a.dport && b.thl == a.thl &&
              b.seq == next_seq && b.ack == a.ack && b.win == a.win &&
              run_payload + b.payload <= oc_.gro_max_bytes))
          break;
        next_seq += static_cast<std::uint32_t>(b.payload);
        run_payload += b.payload;
        ++j;
      }
      if (j < descs.size()) ++off_stats.rx_flush_barrier;
      if (j > i + 1) {
        std::vector<cab::RecvDesc> group(
            std::make_move_iterator(descs.begin() + static_cast<std::ptrdiff_t>(i)),
            std::make_move_iterator(descs.begin() + static_cast<std::ptrdiff_t>(j)));
        off_stats.rx_merged_segs += (j - i) - 1;
        off_stats.rx_merged_bytes += run_payload - a.payload;
        co_await deliver_merged(ctx, std::move(group), a.thl, run_payload);
        i = j;
        continue;
      }
    }
    co_await deliver_desc(ctx, std::move(descs[i]));
    ++i;
  }
}

// Build one mbuf record out of a run of in-sequence segments: the first
// segment's headers (IP length rewritten for the merged total, checksum
// incrementally adjusted per RFC 1624) followed by every segment's payload —
// host-resident head bytes wrapped for free, outboard residue as M_WCAB.
sim::Task<void> CabDriver::deliver_merged(KernCtx ctx,
                                          std::vector<cab::RecvDesc> descs,
                                          std::size_t thl,
                                          std::size_t total_payload) {
  auto& env = stack()->env();
  constexpr std::size_t ip_off = hippi::kHeaderSize;
  const std::size_t hdrs = ip_off + 20 + thl;

  cab::RecvDesc& first = descs.front();
  std::byte* fb = first.head.data();
  const std::uint16_t old_total = wire::load_be16(fb + ip_off + 2);
  const auto new_total = static_cast<std::uint16_t>(20 + thl + total_payload);
  const std::uint16_t old_csum = wire::load_be16(fb + ip_off + 10);
  wire::store_be16(fb + ip_off + 2, new_total);
  wire::store_be16(fb + ip_off + 10, checksum::adjust(old_csum, old_total, new_total));

  Mbuf* head = env.pool.get_ext(first.head.size(), /*pkthdr=*/true);
  head->append(std::span<const std::byte>{first.head.data(), first.head.size()});
  head->pkthdr.len = static_cast<int>(ip_off + new_total);
  head->pkthdr.rx_hw_sum = 0;
  head->pkthdr.rx_hw_sum_valid = false;
  head->pkthdr.rx_csum_verified = true;  // every segment checked above

  Mbuf* tail = head;
  auto attach = [&tail](Mbuf* m) {
    tail->next = m;
    tail = m;
  };
  auto attach_residue = [&](cab::RecvDesc& d) {
    if (!d.handle) {
      ++drv_stats.rx_small;
      return;
    }
    ++drv_stats.rx_wcab;
    mbuf::Wcab w;
    w.owner = &dev_;
    w.handle = *d.handle;  // adopts the allocation reference
    w.data_off = static_cast<std::uint32_t>(d.head.size());
    w.valid = static_cast<std::uint32_t>(d.total_len - d.head.size());
    w.checksum_valid = false;
    mbuf::UioWcabHdr hdr;
    attach(env.pool.get_wcab(w, d.total_len - d.head.size(), hdr, false));
  };

  ++if_stats.ipackets;  // wire packets, not records
  if_stats.ibytes += first.total_len;
  attach_residue(first);
  for (std::size_t k = 1; k < descs.size(); ++k) {
    cab::RecvDesc& d = descs[k];
    ++if_stats.ipackets;
    if_stats.ibytes += d.total_len;
    const std::size_t head_payload = d.head.size() - hdrs;
    if (head_payload > 0) {
      Mbuf* dm = env.pool.get_ext(head_payload, /*pkthdr=*/false);
      dm->append(std::span<const std::byte>{d.head.data() + hdrs, head_payload});
      attach(dm);
    }
    attach_residue(d);
  }

  mbuf::m_adj(head, static_cast<int>(hippi::kHeaderSize));
  co_await stack()->ip().input(ctx, head, this);
}

sim::Task<void> CabDriver::copy_out(KernCtx ctx, const mbuf::Wcab& w,
                                    std::size_t wcab_off, mem::Uio dst,
                                    mbuf::DmaSync* sync) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  if (recovery_enabled_) arm_watchdog();
  ++drv_stats.copyouts;

  auto job = std::make_shared<CopyJob>();
  job->req.dir = cab::SdmaRequest::Dir::kFromCab;
  job->req.handle = w.handle;
  job->req.cab_off = w.data_off + wcab_off;
  job->req.flow = ctx.flow;
  for (const auto& v : dst.iov) {
    job->req.segs.push_back(
        cab::SdmaSeg{v.base, dst.space->write_view(v.base, v.len)});
  }
  // Keep the outboard buffer alive until the DMA executes — the caller is
  // free to drop its mbuf reference immediately.
  dev_.outboard_retain(w.handle);
  job->handle = w.handle;
  job->sync = sync;
  if (sync != nullptr) sync->add();
  submit_copyout(std::move(job));
}

sim::Task<void> CabDriver::copy_out_raw(KernCtx ctx, const mbuf::Wcab& w,
                                        std::size_t wcab_off, std::span<std::byte> dst,
                                        mbuf::DmaSync* sync) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  if (recovery_enabled_) arm_watchdog();
  ++drv_stats.copyouts;

  auto job = std::make_shared<CopyJob>();
  job->req.dir = cab::SdmaRequest::Dir::kFromCab;
  job->req.handle = w.handle;
  job->req.cab_off = w.data_off + wcab_off;
  job->req.flow = ctx.flow;
  job->req.segs.push_back(cab::SdmaSeg{0, dst});
  dev_.outboard_retain(w.handle);
  job->handle = w.handle;
  job->sync = sync;
  if (sync != nullptr) sync->add();
  submit_copyout(std::move(job));
}

// --- fault recovery & graceful degradation ----------------------------------

void CabDriver::unpin_uio(Mbuf* chain) {
  for (Mbuf* m = chain; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kUio && m->uw_hdr().sync != nullptr)
      m->uw_hdr().sync->done(m->len());
  }
}

void CabDriver::enable_recovery(const RecoveryConfig& rc) {
  rc_ = rc;
  recovery_enabled_ = true;
  healthy_caps_ = caps();
  healthy_autodma_words_ = dev_.mdma_recv().autodma_words();
  wd_last_alloc_failures_ = dev_.nm().alloc_failures();
  arm_watchdog();
}

void CabDriver::notify_fault() {
  if (!recovery_enabled_) return;
  check_health();
  arm_watchdog();
}

void CabDriver::arm_watchdog() {
  if (!recovery_enabled_ || wd_armed_ || state_ == AdaptorState::kResetting)
    return;
  wd_armed_ = true;
  wd_timer_ = stack()->env().sim.timer_after(rc_.watchdog_period,
                                             [this] { watchdog_fire(); });
}

void CabDriver::watchdog_fire() {
  wd_armed_ = false;
  ++rec_stats.watchdog_fires;
  if (state_ == AdaptorState::kResetting) return;  // the reset timer owns this

  // Status-register read: a stalled control program needs a board reset.
  if (dev_.fw_stalled()) {
    start_reset();
    return;
  }

  // No-progress check: an engine with queued work whose completion counters
  // did not move over a whole period is wedged even if the status looks fine.
  const auto& ss = dev_.sdma().stats();
  const auto& ms = dev_.mdma_xmit().stats();
  const std::uint64_t mdma_done = ms.packets + ms.errors + ms.aborted;
  const bool sdma_busy = !dev_.sdma().idle();
  const bool mdma_busy = !dev_.mdma_xmit().idle();
  if (wd_progress_valid_ && ((sdma_busy && ss.requests == wd_last_sdma_reqs_) ||
                             (mdma_busy && mdma_done == wd_last_mdma_pkts_))) {
    start_reset();
    return;
  }
  wd_last_sdma_reqs_ = ss.requests;
  wd_last_mdma_pkts_ = mdma_done;
  wd_progress_valid_ = sdma_busy || mdma_busy;

  // Memory-pressure heuristic: allocation failures with most of the pool gone
  // and no exhaustion fault asserted smells like a firmware buffer leak; a
  // reset reclaims whatever no live packet owns.
  const std::uint64_t af = dev_.nm().alloc_failures();
  if (af > wd_last_alloc_failures_ && !dev_.nm().force_exhausted() &&
      dev_.nm().free_bytes() * 8 < dev_.nm().total_bytes()) {
    wd_last_alloc_failures_ = af;
    start_reset();
    return;
  }
  wd_last_alloc_failures_ = af;

  check_health();

  // Stay armed while anything needs watching; otherwise self-disarm so an
  // idle simulation can drain its event queue.
  if (degraded_ != 0 || sdma_busy || mdma_busy ||
      dev_.nm().force_exhausted() || dev_.sdma().checksum().failed())
    arm_watchdog();
}

void CabDriver::check_health() {
  if (!recovery_enabled_ || state_ == AdaptorState::kResetting) return;
  if (dev_.fw_stalled()) {
    start_reset();
    return;
  }
  if (dev_.sdma().checksum().failed())
    enter_degraded(kDegradeCsum);
  else
    exit_degraded(kDegradeCsum);
  if (dev_.nm().force_exhausted())
    enter_degraded(kDegradeNoMem);
  else
    exit_degraded(kDegradeNoMem);
}

void CabDriver::start_reset() {
  if (state_ == AdaptorState::kResetting) return;
  state_ = AdaptorState::kResetting;
  reset_attempts_ = 0;
  wd_timer_.cancel();
  wd_armed_ = false;
  ++rec_stats.resets;
  // Quiesce, then fail out everything in flight. Network memory contents and
  // refcounts survive — a reset reinitializes the engines, not the packet
  // store — so outboard WCAB data stays valid for retransmission.
  dev_.sdma().set_stalled(true);
  dev_.mdma_xmit().set_stalled(true);
  dev_.mdma_recv().set_stalled(true);
  dev_.sdma().abort_all();
  dev_.mdma_xmit().abort_all();
  stack()->env().sim.after(rc_.reset_duration, [this] { finish_reset(); });
}

void CabDriver::finish_reset() {
  if (dev_.fw_stalled()) {
    // The board did not come back: retry with exponential backoff, bounded at
    // the cap (so a long outage retries steadily instead of ever-slower).
    ++rec_stats.reset_failures;
    ++reset_attempts_;
    sim::Duration backoff = rc_.backoff_initial;
    for (int i = 1; i < reset_attempts_ && backoff < rc_.backoff_cap; ++i)
      backoff *= 2;
    if (backoff > rc_.backoff_cap) backoff = rc_.backoff_cap;
    ++rec_stats.resets;
    stack()->env().sim.after(backoff, [this] {
      dev_.sdma().abort_all();
      dev_.mdma_xmit().abort_all();
      stack()->env().sim.after(rc_.reset_duration, [this] { finish_reset(); });
    });
    return;
  }
  // Board is back: unwedge the engines, reclaim leaked pages, re-evaluate
  // degraded modes (a persistent checksum/memory fault keeps us degraded).
  dev_.sdma().set_stalled(false);
  dev_.mdma_xmit().set_stalled(false);
  dev_.mdma_recv().set_stalled(false);
  rec_stats.leaked_reclaimed += dev_.nm().reclaim_leaked();
  state_ = AdaptorState::kUp;
  reset_attempts_ = 0;
  ++rec_stats.reset_completes;
  check_health();
  arm_watchdog();
}

void CabDriver::enter_degraded(unsigned reason) {
  if ((degraded_ & reason) != 0) return;
  degraded_ |= reason;
  if ((reason & kDegradeCsum) != 0) {
    ++rec_stats.degrade_enter_csum;
    // Grow the autodma window past the MTU: packets arrive fully
    // host-resident, so the software checksum (and the application) never
    // needs outboard reads.
    healthy_autodma_words_ = dev_.mdma_recv().autodma_words();
    dev_.mdma_recv().set_autodma_words(
        static_cast<std::uint32_t>(rc_.degraded_autodma_bytes / 4));
  }
  if ((reason & kDegradeNoMem) != 0) ++rec_stats.degrade_enter_nomem;
  apply_caps();
}

void CabDriver::exit_degraded(unsigned reason) {
  if ((degraded_ & reason) == 0) return;
  degraded_ &= ~reason;
  if ((reason & kDegradeCsum) != 0) {
    ++rec_stats.degrade_exit_csum;
    dev_.mdma_recv().set_autodma_words(healthy_autodma_words_);
  }
  if ((reason & kDegradeNoMem) != 0) ++rec_stats.degrade_exit_nomem;
  apply_caps();
}

void CabDriver::apply_caps() {
  unsigned c = healthy_caps_;
  // Either degradation routes new writes through the host bounce path: no
  // new pinned user pages, and checksums move to the software loop.
  if (degraded_ != 0) c &= ~(net::kCapSingleCopy | net::kCapHwChecksum);
  set_caps(c);
}

void CabDriver::submit_copyout(std::shared_ptr<CopyJob> job) {
  cab::SdmaRequest r = job->req;  // keep the master copy for reposting
  r.on_complete = [this, job](const cab::SdmaRequest& done) {
    if (!done.failed) {
      dev_.outboard_release(job->handle);
      if (job->sync != nullptr) job->sync->done();
      return;
    }
    note_dma_failure();
    retry_copyout(job);
  };
  if (!dev_.sdma().post(std::move(r))) retry_copyout(job);
}

void CabDriver::retry_copyout(std::shared_ptr<CopyJob> job) {
  if (++job->attempts > rc_.dma_retry_limit) {
    // Give up loudly: the reader's wait must not hang forever, but the bytes
    // never arrived — the counter is the alarm.
    ++rec_stats.copyouts_failed;
    dev_.outboard_release(job->handle);
    if (job->sync != nullptr) job->sync->done();
    return;
  }
  ++rec_stats.copyout_retries;
  stack()->env().sim.after(rc_.dma_retry_delay,
                           [this, job] { submit_copyout(job); });
}

}  // namespace nectar::drivers
