#include "drivers/cab_driver.h"

#include "net/ip.h"
#include "telemetry/telemetry.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace nectar::drivers {

using mbuf::Mbuf;
using net::KernCtx;

hippi::Addr CabDriver::resolve(net::IpAddr next_hop) const {
  auto it = neighbors_.find(next_hop);
  if (it == neighbors_.end())
    throw std::out_of_range("CabDriver: no HIPPI neighbour for next hop");
  return it->second;
}

sim::Task<void> CabDriver::output(KernCtx ctx, Mbuf* pkt, net::IpAddr next_hop) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  if (recovery_enabled_) {
    arm_watchdog();
    if (state_ == AdaptorState::kResetting) {
      // The board is mid-reset: drop fast, like a driver whose tx ring is
      // torn down. The transport retransmits once the adaptor is back.
      ++rec_stats.tx_dropped_resetting;
      ++if_stats.oerrors;
      unpin_uio(pkt);
      env.pool.free_chain(pkt);
      co_return;
    }
  }

  // Classify the data portion.
  bool has_wcab = false;
  for (Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kWcab) has_wcab = true;
  }
  if (has_wcab) {
    co_await output_rewrite(ctx, pkt, next_hop);
    co_return;
  }

  // Fresh packet: HIPPI header + full SDMA into a new outboard buffer.
  hippi::FrameHeader fh;
  fh.dst = resolve(next_hop);
  fh.src = dev_.addr();
  fh.type = hippi::kTypeIp;
  fh.payload_len = static_cast<std::uint32_t>(pkt->pkthdr.len);
  Mbuf* m0 = mbuf::m_prepend(pkt, static_cast<int>(hippi::kHeaderSize));
  hippi::write_header({m0->data(), hippi::kHeaderSize}, fh);

  const auto total = static_cast<std::size_t>(m0->pkthdr.len);
  auto handle = dev_.nm().alloc(total);
  if (!handle) {
    ++drv_stats.tx_no_memory;
    ++if_stats.oerrors;
    env.pool.free_chain(m0);
    co_return;
  }

  cab::SdmaRequest req;
  req.dir = cab::SdmaRequest::Dir::kToCab;
  req.handle = *handle;
  req.cab_off = 0;
  req.flow = m0->pkthdr.flow;
  std::size_t data_start = 0;  // offset of the first M_UIO byte in the packet
  bool before_data = true;
  for (Mbuf* m = m0; m != nullptr; m = m->next) {
    switch (m->type()) {
      case mbuf::MbufType::kData:
        if (before_data) data_start += static_cast<std::size_t>(m->len());
        req.segs.push_back(cab::SdmaSeg{0, m->span()});
        break;
      case mbuf::MbufType::kUio: {
        before_data = false;
        const mem::Uio& u = m->uio();
        if (!u.word_aligned())
          throw std::logic_error(
              "CabDriver: misaligned M_UIO reached the driver (socket-layer bug)");
        for (const auto& v : u.iov) {
          req.segs.push_back(
              cab::SdmaSeg{v.base, u.space->write_view(v.base, v.len)});
        }
        break;
      }
      case mbuf::MbufType::kWcab:
        throw std::logic_error("CabDriver: WCAB in fresh-packet path");
    }
  }

  if (m0->pkthdr.csum_tx.offload) {
    req.csum_enable = true;
    // Transport offsets are relative to the IP header; add the link header.
    req.skip_words = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.skip_words +
                                                hippi::kHeaderSize / 4);
    req.csum_offset = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.csum_offset +
                                                 hippi::kHeaderSize);
  }

  ++drv_stats.tx_fresh;
  ++if_stats.opackets;
  if_stats.obytes += total;

  const cab::Handle h = *handle;
  cab::CabDevice* dev = &dev_;
  // The mbuf chain must stay alive until the SDMA engine reads it.
  Mbuf* chain = m0;
  const std::size_t dstart = data_start;
  const std::uint32_t flow = m0->pkthdr.flow;
  req.on_complete = [this, dev, h, chain, total, dstart,
                     flow](const cab::SdmaRequest& done) {
    if (done.failed) {
      // Nothing went outboard: unpin the writer's pages, drop the packet
      // (the transport retransmits), release the buffer we allocated.
      ++rec_stats.tx_dma_failed;
      ++if_stats.oerrors;
      unpin_uio(chain);
      chain->pool().free_chain(chain);
      dev->nm().release(h);
      note_dma_failure();
      return;
    }
    if (chain->pkthdr.on_outboarded) {
      mbuf::Wcab w;
      w.owner = dev;
      w.handle = h;
      // dstart already counts every header byte (incl. the link header, since
      // it was prepended before the scan).
      w.data_off = static_cast<std::uint32_t>(dstart);
      w.valid = static_cast<std::uint32_t>(total - dstart);
      chain->pkthdr.on_outboarded(w);
    }
    chain->pool().free_chain(chain);
    // Media transfer chains directly off SDMA completion (§2.2). The MDMA
    // completion drops the driver's buffer reference; no host interrupt is
    // needed (TCP's ACK confirms delivery).
    cab::MdmaXmit::Request mr;
    mr.handle = h;
    mr.len = total;
    mr.flow = flow;
    mr.on_complete = [dev, h] { dev->nm().release(h); };
    dev->mdma_xmit().post(mr);
  };

  if (!dev_.sdma().post(std::move(req))) {
    ++if_stats.oerrors;
    dev_.nm().release(h);
    env.pool.free_chain(m0);
  }
  co_return;
}

sim::Task<void> CabDriver::output_rewrite(KernCtx ctx, Mbuf* pkt,
                                          net::IpAddr next_hop) {
  (void)ctx;
  auto& env = stack()->env();
  // Expect: header mbufs (regular) followed by exactly one WCAB mbuf whose
  // data_off equals the total header length (link + IP + transport). This
  // invariant is guaranteed by TCP's segment-boundary rule for retransmits.
  std::size_t hdr_len = 0;
  Mbuf* wm = nullptr;
  for (Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kData) {
      if (wm != nullptr)
        throw std::logic_error("CabDriver: data after WCAB in retransmit");
      hdr_len += static_cast<std::size_t>(m->len());
    } else if (m->type() == mbuf::MbufType::kWcab) {
      if (wm != nullptr)
        throw std::logic_error("CabDriver: multiple WCAB mbufs in one packet");
      wm = m;
    } else {
      throw std::logic_error("CabDriver: UIO mixed with WCAB in one packet");
    }
  }
  assert(wm != nullptr);
  const mbuf::Wcab w = wm->wcab();
  if (w.data_off != hdr_len + hippi::kHeaderSize) {
    std::fprintf(stderr, "CabDriver mismatch: data_off=%u hdr_len=%zu wm_len=%d valid=%u pkthdr_len=%d\n",
                 w.data_off, hdr_len, wm->len(), w.valid, pkt->pkthdr.len);
    throw std::logic_error("CabDriver: retransmit does not match outboard packet");
  }

  hippi::FrameHeader fh;
  fh.dst = resolve(next_hop);
  fh.src = dev_.addr();
  fh.type = hippi::kTypeIp;
  fh.payload_len = static_cast<std::uint32_t>(pkt->pkthdr.len);
  Mbuf* m0 = mbuf::m_prepend(pkt, static_cast<int>(hippi::kHeaderSize));
  hippi::write_header({m0->data(), hippi::kHeaderSize}, fh);

  const std::size_t total = w.data_off + wm->len();

  cab::SdmaRequest req;
  req.dir = cab::SdmaRequest::Dir::kToCab;
  req.handle = w.handle;
  req.cab_off = 0;
  req.flow = m0->pkthdr.flow;
  req.header_rewrite = true;
  for (Mbuf* m = m0; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kData)
      req.segs.push_back(cab::SdmaSeg{0, m->span()});
  }
  if (!m0->pkthdr.csum_tx.offload)
    throw std::logic_error("CabDriver: WCAB retransmit requires outboard checksum");
  req.csum_enable = true;
  req.skip_words = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.skip_words +
                                              hippi::kHeaderSize / 4);
  req.csum_offset = static_cast<std::uint16_t>(m0->pkthdr.csum_tx.csum_offset +
                                               hippi::kHeaderSize);

  ++drv_stats.tx_rewrite;
  ++if_stats.opackets;
  if_stats.obytes += total;

  const cab::Handle h = w.handle;
  cab::CabDevice* dev = &dev_;
  dev_.outboard_retain(h);  // keep alive through SDMA + MDMA
  Mbuf* chain = m0;
  const std::uint32_t flow = m0->pkthdr.flow;
  req.on_complete = [this, dev, h, chain, total, flow](const cab::SdmaRequest& done) {
    if (done.failed) {
      // Header rewrite failed (reset/injected error): the outboard data is
      // intact, so the next RTO retransmission simply tries again.
      ++rec_stats.tx_dma_failed;
      ++if_stats.oerrors;
      chain->pool().free_chain(chain);  // drops the packet's own WCAB reference
      dev->nm().release(h);             // the transmit-path retain above
      note_dma_failure();
      return;
    }
    chain->pool().free_chain(chain);  // drops the packet's own WCAB reference
    cab::MdmaXmit::Request mr;
    mr.handle = h;
    mr.len = total;
    mr.flow = flow;
    mr.on_complete = [dev, h] { dev->nm().release(h); };
    dev->mdma_xmit().post(mr);
  };

  if (!dev_.sdma().post(std::move(req))) {
    ++if_stats.oerrors;
    dev_.outboard_release(h);
    env.pool.free_chain(m0);
  }
  co_return;
}

sim::Task<void> CabDriver::copy_in(KernCtx ctx, mem::Uio data,
                                   std::size_t header_space,
                                   std::function<void(mbuf::Wcab)> done) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  if (recovery_enabled_) arm_watchdog();
  if (!data.word_aligned())
    throw std::logic_error("CabDriver::copy_in: misaligned user data");

  const std::size_t len = data.total_len();
  std::optional<cab::Handle> handle;
  for (int tries = 0; tries < 10000; ++tries) {
    handle = dev_.nm().alloc(header_space + len);
    if (handle) break;
    // Outboard memory recycles as ACKs free retransmit buffers.
    ++drv_stats.tx_no_memory;
    co_await sim::delay(env.sim, sim::usec(500));
  }
  if (!handle) throw std::runtime_error("CabDriver::copy_in: outboard memory stuck");

  auto job = std::make_shared<CopyinJob>();
  if (auto* tel = env.telemetry) {
    job->tel_key = tel->next_key();
    tel->span_begin(telemetry::Stage::kDriverStage, env.tel_pid, job->tel_key,
                    ctx.flow);
  }
  job->req.dir = cab::SdmaRequest::Dir::kToCab;
  job->req.handle = *handle;
  job->req.cab_off = header_space;
  job->req.flow = ctx.flow;
  for (const auto& v : data.iov)
    job->req.segs.push_back(
        cab::SdmaSeg{v.base, data.space->write_view(v.base, v.len)});
  job->req.csum_enable = true;
  job->req.body_sum_only = true;
  job->req.skip_words = 0;
  job->done = std::move(done);
  job->handle = *handle;
  job->data_off = static_cast<std::uint32_t>(header_space);
  job->data_len = static_cast<std::uint32_t>(len);
  submit_copyin(std::move(job));
}

void CabDriver::submit_copyin(std::shared_ptr<CopyinJob> job) {
  cab::SdmaRequest r = job->req;  // keep the master copy for reposting
  r.on_complete = [this, job](const cab::SdmaRequest& done) {
    if (!done.failed) {
      if (!job->req.csum_enable) {
        // The data is outboard but the engine could not sum it: compute the
        // body sum in software from the (still pinned) host pages, so WCAB
        // header-rewrite transmissions keep working.
        std::uint32_t sum = 0;
        std::size_t off = 0;
        for (const auto& seg : job->req.segs) {
          sum = checksum::combine(sum, checksum::ones_sum(seg.bytes), off);
          off += seg.bytes.size();
        }
        dev_.nm().set_body_sum(job->handle, sum);
        ++rec_stats.copy_in_sw_csum;
      }
      mbuf::Wcab w;
      w.owner = &dev_;
      w.handle = job->handle;
      w.data_off = job->data_off;
      w.valid = job->data_len;
      if (job->tel_key != 0) {
        if (auto* tel = stack()->env().telemetry)
          tel->span_end(telemetry::Stage::kDriverStage, job->tel_key);
      }
      job->done(w);
      return;
    }
    note_dma_failure();
    if (job->req.csum_enable && dev_.sdma().checksum().failed()) {
      // Parity abort: restage without the engine's checksum path.
      job->req.csum_enable = false;
      job->req.body_sum_only = false;
    }
    ++rec_stats.copy_in_retries;
    stack()->env().sim.after(rc_.dma_retry_delay,
                             [this, job] { submit_copyin(job); });
  };
  if (!dev_.sdma().post(std::move(r))) {
    // Command queue full: space frees as the engine drains (or recovers).
    ++rec_stats.copy_in_retries;
    stack()->env().sim.after(rc_.dma_retry_delay,
                             [this, job] { submit_copyin(job); });
  }
}

void CabDriver::handle_recv(cab::RecvDesc&& desc) {
  // Hardware completion context: hand off to an interrupt-priority coroutine.
  sim::spawn(recv_intr(std::move(desc)));
}

sim::Task<void> CabDriver::recv_intr(cab::RecvDesc desc) {
  auto& env = stack()->env();
  KernCtx ctx{env.intr_acct, sim::Priority::Interrupt};
  co_await env.cpu.run(sim::usec(stack()->costs().intr_us), ctx.acct, ctx.prio);
  if (recovery_enabled_) arm_watchdog();

  ++if_stats.ipackets;
  if_stats.ibytes += desc.total_len;

  // With a failed checksum unit the hardware sum is garbage; deliver packets
  // as plain host data and let the transport run its software checksum.
  const bool csum_degraded = (degraded_ & kDegradeCsum) != 0;

  // Wrap the auto-DMAed head (already host-resident; wrapping is free).
  Mbuf* head = env.pool.get_ext(desc.head.size(), /*pkthdr=*/true);
  head->append(std::span<const std::byte>{desc.head.data(), desc.head.size()});
  head->pkthdr.len = static_cast<int>(desc.total_len);
  head->pkthdr.rx_hw_sum = desc.hw_sum;
  head->pkthdr.rx_hw_sum_valid = !csum_degraded;

  if (desc.handle && csum_degraded) {
    // Degraded mode caught a packet with outboard residue (arrived before the
    // autodma window grew): bounce the residue into host memory so the
    // software checksum can read the whole packet, then drop the outboard
    // buffer. This is the host bounce-buffer path of the paper's baseline.
    const std::size_t resid_len = desc.total_len - desc.head.size();
    std::vector<std::byte> resid(resid_len);
    cab::SdmaRequest req;
    req.dir = cab::SdmaRequest::Dir::kFromCab;
    req.handle = *desc.handle;
    req.cab_off = desc.head.size();
    req.segs.push_back(cab::SdmaSeg{0, std::span<std::byte>(resid)});
    bool failed = false;
    mbuf::DmaSync bounce_sync(env.sim);
    bounce_sync.add();
    req.on_complete = [&failed, &bounce_sync](const cab::SdmaRequest& done) {
      failed = done.failed;
      bounce_sync.done();
    };
    if (!dev_.sdma().post(std::move(req)))
      failed = true;
    else
      co_await bounce_sync.drain();
    dev_.nm().release(*desc.handle);
    if (failed) {
      ++rec_stats.rx_bounce_failed;
      env.pool.free_chain(head);
      co_return;
    }
    ++rec_stats.rx_bounced;
    ++drv_stats.rx_small;  // delivered fully host-resident
    Mbuf* rm = env.pool.get_ext(resid.size(), /*pkthdr=*/false);
    rm->append(std::span<const std::byte>{resid.data(), resid.size()});
    head->next = rm;
  } else if (desc.handle) {
    ++drv_stats.rx_wcab;
    mbuf::Wcab w;
    w.owner = &dev_;
    w.handle = *desc.handle;  // adopts the allocation reference
    w.data_off = static_cast<std::uint32_t>(desc.head.size());
    w.valid = static_cast<std::uint32_t>(desc.total_len - desc.head.size());
    w.checksum_valid = false;
    mbuf::UioWcabHdr hdr;
    Mbuf* wm = env.pool.get_wcab(w, desc.total_len - desc.head.size(), hdr, false);
    head->next = wm;
  } else {
    ++drv_stats.rx_small;
  }

  // Validate and strip HIPPI framing.
  const hippi::FrameHeader fh = hippi::read_header(head->span());
  if (fh.type != hippi::kTypeIp) {
    env.pool.free_chain(head);
    co_return;
  }
  mbuf::m_adj(head, static_cast<int>(hippi::kHeaderSize));
  co_await stack()->ip().input(ctx, head, this);
}

sim::Task<void> CabDriver::copy_out(KernCtx ctx, const mbuf::Wcab& w,
                                    std::size_t wcab_off, mem::Uio dst,
                                    mbuf::DmaSync* sync) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  if (recovery_enabled_) arm_watchdog();
  ++drv_stats.copyouts;

  auto job = std::make_shared<CopyJob>();
  job->req.dir = cab::SdmaRequest::Dir::kFromCab;
  job->req.handle = w.handle;
  job->req.cab_off = w.data_off + wcab_off;
  job->req.flow = ctx.flow;
  for (const auto& v : dst.iov) {
    job->req.segs.push_back(
        cab::SdmaSeg{v.base, dst.space->write_view(v.base, v.len)});
  }
  // Keep the outboard buffer alive until the DMA executes — the caller is
  // free to drop its mbuf reference immediately.
  dev_.outboard_retain(w.handle);
  job->handle = w.handle;
  job->sync = sync;
  if (sync != nullptr) sync->add();
  submit_copyout(std::move(job));
}

sim::Task<void> CabDriver::copy_out_raw(KernCtx ctx, const mbuf::Wcab& w,
                                        std::size_t wcab_off, std::span<std::byte> dst,
                                        mbuf::DmaSync* sync) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);
  if (recovery_enabled_) arm_watchdog();
  ++drv_stats.copyouts;

  auto job = std::make_shared<CopyJob>();
  job->req.dir = cab::SdmaRequest::Dir::kFromCab;
  job->req.handle = w.handle;
  job->req.cab_off = w.data_off + wcab_off;
  job->req.flow = ctx.flow;
  job->req.segs.push_back(cab::SdmaSeg{0, dst});
  dev_.outboard_retain(w.handle);
  job->handle = w.handle;
  job->sync = sync;
  if (sync != nullptr) sync->add();
  submit_copyout(std::move(job));
}

// --- fault recovery & graceful degradation ----------------------------------

void CabDriver::unpin_uio(Mbuf* chain) {
  for (Mbuf* m = chain; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kUio && m->uw_hdr().sync != nullptr)
      m->uw_hdr().sync->done(m->len());
  }
}

void CabDriver::enable_recovery(const RecoveryConfig& rc) {
  rc_ = rc;
  recovery_enabled_ = true;
  healthy_caps_ = caps();
  healthy_autodma_words_ = dev_.mdma_recv().autodma_words();
  wd_last_alloc_failures_ = dev_.nm().alloc_failures();
  arm_watchdog();
}

void CabDriver::notify_fault() {
  if (!recovery_enabled_) return;
  check_health();
  arm_watchdog();
}

void CabDriver::arm_watchdog() {
  if (!recovery_enabled_ || wd_armed_ || state_ == AdaptorState::kResetting)
    return;
  wd_armed_ = true;
  wd_timer_ = stack()->env().sim.timer_after(rc_.watchdog_period,
                                             [this] { watchdog_fire(); });
}

void CabDriver::watchdog_fire() {
  wd_armed_ = false;
  ++rec_stats.watchdog_fires;
  if (state_ == AdaptorState::kResetting) return;  // the reset timer owns this

  // Status-register read: a stalled control program needs a board reset.
  if (dev_.fw_stalled()) {
    start_reset();
    return;
  }

  // No-progress check: an engine with queued work whose completion counters
  // did not move over a whole period is wedged even if the status looks fine.
  const auto& ss = dev_.sdma().stats();
  const auto& ms = dev_.mdma_xmit().stats();
  const std::uint64_t mdma_done = ms.packets + ms.errors + ms.aborted;
  const bool sdma_busy = !dev_.sdma().idle();
  const bool mdma_busy = !dev_.mdma_xmit().idle();
  if (wd_progress_valid_ && ((sdma_busy && ss.requests == wd_last_sdma_reqs_) ||
                             (mdma_busy && mdma_done == wd_last_mdma_pkts_))) {
    start_reset();
    return;
  }
  wd_last_sdma_reqs_ = ss.requests;
  wd_last_mdma_pkts_ = mdma_done;
  wd_progress_valid_ = sdma_busy || mdma_busy;

  // Memory-pressure heuristic: allocation failures with most of the pool gone
  // and no exhaustion fault asserted smells like a firmware buffer leak; a
  // reset reclaims whatever no live packet owns.
  const std::uint64_t af = dev_.nm().alloc_failures();
  if (af > wd_last_alloc_failures_ && !dev_.nm().force_exhausted() &&
      dev_.nm().free_bytes() * 8 < dev_.nm().total_bytes()) {
    wd_last_alloc_failures_ = af;
    start_reset();
    return;
  }
  wd_last_alloc_failures_ = af;

  check_health();

  // Stay armed while anything needs watching; otherwise self-disarm so an
  // idle simulation can drain its event queue.
  if (degraded_ != 0 || sdma_busy || mdma_busy ||
      dev_.nm().force_exhausted() || dev_.sdma().checksum().failed())
    arm_watchdog();
}

void CabDriver::check_health() {
  if (!recovery_enabled_ || state_ == AdaptorState::kResetting) return;
  if (dev_.fw_stalled()) {
    start_reset();
    return;
  }
  if (dev_.sdma().checksum().failed())
    enter_degraded(kDegradeCsum);
  else
    exit_degraded(kDegradeCsum);
  if (dev_.nm().force_exhausted())
    enter_degraded(kDegradeNoMem);
  else
    exit_degraded(kDegradeNoMem);
}

void CabDriver::start_reset() {
  if (state_ == AdaptorState::kResetting) return;
  state_ = AdaptorState::kResetting;
  reset_attempts_ = 0;
  wd_timer_.cancel();
  wd_armed_ = false;
  ++rec_stats.resets;
  // Quiesce, then fail out everything in flight. Network memory contents and
  // refcounts survive — a reset reinitializes the engines, not the packet
  // store — so outboard WCAB data stays valid for retransmission.
  dev_.sdma().set_stalled(true);
  dev_.mdma_xmit().set_stalled(true);
  dev_.mdma_recv().set_stalled(true);
  dev_.sdma().abort_all();
  dev_.mdma_xmit().abort_all();
  stack()->env().sim.after(rc_.reset_duration, [this] { finish_reset(); });
}

void CabDriver::finish_reset() {
  if (dev_.fw_stalled()) {
    // The board did not come back: retry with exponential backoff, bounded at
    // the cap (so a long outage retries steadily instead of ever-slower).
    ++rec_stats.reset_failures;
    ++reset_attempts_;
    sim::Duration backoff = rc_.backoff_initial;
    for (int i = 1; i < reset_attempts_ && backoff < rc_.backoff_cap; ++i)
      backoff *= 2;
    if (backoff > rc_.backoff_cap) backoff = rc_.backoff_cap;
    ++rec_stats.resets;
    stack()->env().sim.after(backoff, [this] {
      dev_.sdma().abort_all();
      dev_.mdma_xmit().abort_all();
      stack()->env().sim.after(rc_.reset_duration, [this] { finish_reset(); });
    });
    return;
  }
  // Board is back: unwedge the engines, reclaim leaked pages, re-evaluate
  // degraded modes (a persistent checksum/memory fault keeps us degraded).
  dev_.sdma().set_stalled(false);
  dev_.mdma_xmit().set_stalled(false);
  dev_.mdma_recv().set_stalled(false);
  rec_stats.leaked_reclaimed += dev_.nm().reclaim_leaked();
  state_ = AdaptorState::kUp;
  reset_attempts_ = 0;
  ++rec_stats.reset_completes;
  check_health();
  arm_watchdog();
}

void CabDriver::enter_degraded(unsigned reason) {
  if ((degraded_ & reason) != 0) return;
  degraded_ |= reason;
  if ((reason & kDegradeCsum) != 0) {
    ++rec_stats.degrade_enter_csum;
    // Grow the autodma window past the MTU: packets arrive fully
    // host-resident, so the software checksum (and the application) never
    // needs outboard reads.
    healthy_autodma_words_ = dev_.mdma_recv().autodma_words();
    dev_.mdma_recv().set_autodma_words(
        static_cast<std::uint32_t>(rc_.degraded_autodma_bytes / 4));
  }
  if ((reason & kDegradeNoMem) != 0) ++rec_stats.degrade_enter_nomem;
  apply_caps();
}

void CabDriver::exit_degraded(unsigned reason) {
  if ((degraded_ & reason) == 0) return;
  degraded_ &= ~reason;
  if ((reason & kDegradeCsum) != 0) {
    ++rec_stats.degrade_exit_csum;
    dev_.mdma_recv().set_autodma_words(healthy_autodma_words_);
  }
  if ((reason & kDegradeNoMem) != 0) ++rec_stats.degrade_exit_nomem;
  apply_caps();
}

void CabDriver::apply_caps() {
  unsigned c = healthy_caps_;
  // Either degradation routes new writes through the host bounce path: no
  // new pinned user pages, and checksums move to the software loop.
  if (degraded_ != 0) c &= ~(net::kCapSingleCopy | net::kCapHwChecksum);
  set_caps(c);
}

void CabDriver::submit_copyout(std::shared_ptr<CopyJob> job) {
  cab::SdmaRequest r = job->req;  // keep the master copy for reposting
  r.on_complete = [this, job](const cab::SdmaRequest& done) {
    if (!done.failed) {
      dev_.outboard_release(job->handle);
      if (job->sync != nullptr) job->sync->done();
      return;
    }
    note_dma_failure();
    retry_copyout(job);
  };
  if (!dev_.sdma().post(std::move(r))) retry_copyout(job);
}

void CabDriver::retry_copyout(std::shared_ptr<CopyJob> job) {
  if (++job->attempts > rc_.dma_retry_limit) {
    // Give up loudly: the reader's wait must not hang forever, but the bytes
    // never arrived — the counter is the alarm.
    ++rec_stats.copyouts_failed;
    dev_.outboard_release(job->handle);
    if (job->sync != nullptr) job->sync->done();
    return;
  }
  ++rec_stats.copyout_retries;
  stack()->env().sim.after(rc_.dma_retry_delay,
                           [this, job] { submit_copyout(job); });
}

}  // namespace nectar::drivers
