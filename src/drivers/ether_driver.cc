#include "drivers/ether_driver.h"

#include "net/ip.h"

#include <cstring>
#include <memory>

namespace nectar::drivers {

using mbuf::Mbuf;
using net::KernCtx;

sim::Task<Mbuf*> convert_uio_record(net::NetStack& stack, KernCtx ctx, Mbuf* pkt) {
  auto& env = stack.env();
  Mbuf** link = &pkt;
  Mbuf* m = pkt;
  while (m != nullptr) {
    if (m->type() != mbuf::MbufType::kUio) {
      link = &m->next;
      m = m->next;
      continue;
    }
    // Copy the user data into cluster mbufs (charged at copy bandwidth).
    const auto len = static_cast<std::size_t>(m->len());
    co_await env.cpu.run(
        sim::transfer_time(static_cast<std::int64_t>(len), stack.costs().copy_bw_bps),
        ctx.acct, ctx.prio);

    Mbuf* repl_head = nullptr;
    Mbuf** repl_link = &repl_head;
    const mem::Uio& u = m->uio();
    std::size_t produced = 0;
    Mbuf* cur = nullptr;
    for (const auto& v : u.iov) {
      auto src = u.space->read_view(v.base, v.len);
      std::size_t off = 0;
      while (off < v.len) {
        if (cur == nullptr || cur->trailing_space() == 0) {
          cur = env.pool.get_cluster(false);
          *repl_link = cur;
          repl_link = &cur->next;
        }
        const std::size_t take = std::min(v.len - off, cur->trailing_space());
        cur->append(src.subspan(off, take));
        off += take;
        produced += take;
      }
    }
    (void)produced;

    // The data is now copied: the writer no longer needs its buffer.
    if (m->uw_hdr().sync != nullptr)
      m->uw_hdr().sync->done(static_cast<int>(len));

    Mbuf* after = m->next;
    if (m->has_pkthdr() && repl_head != nullptr) {
      repl_head->add_flags(mbuf::kMPktHdr);
      repl_head->pkthdr = m->pkthdr;
    }
    m->next = nullptr;
    env.pool.free_one(m);
    *link = repl_head != nullptr ? repl_head : after;
    Mbuf* tail = repl_head;
    while (tail != nullptr && tail->next != nullptr) tail = tail->next;
    if (tail != nullptr) {
      tail->next = after;
      link = &tail->next;
    }
    m = after;
  }
  co_return pkt;
}

void EtherSegment::transmit(net::IpAddr dst, std::vector<std::byte> frame) {
  q_.emplace_back(dst, std::move(frame));
  kick();
}

void EtherSegment::kick() {
  if (busy_ || q_.empty()) return;
  busy_ = true;
  auto [dst, frame] = std::move(q_.front());
  q_.pop_front();
  const auto t = sim::transfer_time(static_cast<std::int64_t>(frame.size()), bw_);
  auto shared = std::make_shared<std::vector<std::byte>>(std::move(frame));
  const net::IpAddr dest = dst;
  sim_.after(t + prop_, [this, dest, shared] {
    busy_ = false;
    auto it = drivers_.find(dest);
    if (it == drivers_.end()) {
      ++dropped_;
    } else {
      ++delivered_;
      it->second->deliver(std::move(*shared));
    }
    kick();
  });
}

sim::Task<void> EtherDriver::output(KernCtx ctx, Mbuf* pkt, net::IpAddr next_hop) {
  auto& env = stack()->env();
  co_await env.cpu.run(sim::usec(stack()->costs().driver_issue_us), ctx.acct,
                       ctx.prio);

  // §5 entry-point conversion: this driver does not understand descriptors.
  bool has_uio = false;
  bool has_wcab = false;
  for (Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kUio) has_uio = true;
    if (m->type() == mbuf::MbufType::kWcab) has_wcab = true;
  }
  if (has_wcab) {
    // Outboard data is unreachable from here (see header comment).
    ++drv_stats.wcab_dropped;
    ++if_stats.oerrors;
    env.pool.free_chain(pkt);
    co_return;
  }
  if (has_uio) {
    ++if_stats.uio_converted;
    pkt = co_await convert_uio_record(*stack(), ctx, pkt);
  }

  // Flatten into a frame (the NIC's view of the mbuf chain; DMA, not CPU).
  const auto len = static_cast<std::size_t>(mbuf::m_length(pkt));
  std::vector<std::byte> frame(len);
  mbuf::m_copydata(pkt, 0, static_cast<int>(len), frame);
  env.pool.free_chain(pkt);

  ++if_stats.opackets;
  if_stats.obytes += len;
  seg_.transmit(next_hop, std::move(frame));
  co_return;
}

void EtherDriver::deliver(std::vector<std::byte> frame) {
  sim::spawn(recv_intr(std::move(frame)));
}

sim::Task<void> EtherDriver::recv_intr(std::vector<std::byte> frame) {
  auto& env = stack()->env();
  KernCtx ctx{env.intr_acct, sim::Priority::Interrupt};
  co_await env.cpu.run(sim::usec(stack()->costs().intr_us), ctx.acct, ctx.prio);

  ++if_stats.ipackets;
  if_stats.ibytes += frame.size();

  // The NIC DMAed the frame into host buffers; wrap it (no CPU charge).
  Mbuf* m = env.pool.get_ext(frame.size(), /*pkthdr=*/true);
  m->append(frame);
  m->pkthdr.len = static_cast<int>(frame.size());
  co_await stack()->ip().input(ctx, m, this);
}

}  // namespace nectar::drivers
