// Loopback interface: output re-enters ip_input on the same stack after a
// queue hop. Regular mbufs only (UIO records convert at entry, like any
// non-single-copy device).
#pragma once

#include "net/ifnet.h"
#include "net/netstack.h"

namespace nectar::drivers {

class LoopbackDriver final : public net::Ifnet {
 public:
  explicit LoopbackDriver(std::string name = "lo0",
                          net::IpAddr addr = net::make_ip(127, 0, 0, 1),
                          std::size_t mtu = 32 * 1024)
      : Ifnet(std::move(name), addr, mtu, /*caps=*/0) {}

  sim::Task<void> output(net::KernCtx ctx, mbuf::Mbuf* pkt,
                         net::IpAddr next_hop) override;
};

}  // namespace nectar::drivers
