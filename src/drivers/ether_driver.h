// An "existing device" driver (§5): a conventional Ethernet-style interface
// with no outboard buffering or checksumming.
//
// The single-copy stack must interoperate with it unmodified — the entire
// accommodation is a thin layer at the driver entry that converts M_UIO
// records into regular mbufs with a memory-memory copy ("a copy has merely
// been delayed", §5). M_WCAB data cannot appear here: outboard data only
// exists for packets already routed to a CAB, and this stack never re-routes
// buffered TCP data across interfaces mid-connection (counted + dropped
// defensively).
//
// The medium is an EtherSegment: a shared link with configurable bandwidth,
// delivering by next-hop IP.
#pragma once

#include <unordered_map>

#include "net/ifnet.h"
#include "net/netstack.h"

namespace nectar::drivers {

class EtherDriver;

class EtherSegment {
 public:
  EtherSegment(sim::Simulator& sim, double bandwidth_bps = 10e6 / 8 * 8,
               sim::Duration propagation = sim::usec(50))
      : sim_(sim), bw_(bandwidth_bps), prop_(propagation) {}

  void attach(net::IpAddr addr, EtherDriver* drv) { drivers_[addr] = drv; }

  // Serialize a packet onto the shared medium (FIFO) and deliver it.
  void transmit(net::IpAddr dst, std::vector<std::byte> frame);

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  void kick();

  sim::Simulator& sim_;
  double bw_;
  sim::Duration prop_;
  bool busy_ = false;
  std::deque<std::pair<net::IpAddr, std::vector<std::byte>>> q_;
  std::unordered_map<net::IpAddr, EtherDriver*> drivers_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

class EtherDriver final : public net::Ifnet {
 public:
  EtherDriver(std::string name, net::IpAddr addr, EtherSegment& seg,
              std::size_t mtu = 1500)
      : Ifnet(std::move(name), addr, mtu, /*caps=*/0), seg_(seg) {
    seg.attach(addr, this);
  }

  sim::Task<void> output(net::KernCtx ctx, mbuf::Mbuf* pkt,
                         net::IpAddr next_hop) override;

  // Called by the segment when a frame arrives.
  void deliver(std::vector<std::byte> frame);

  struct DrvStats {
    std::uint64_t wcab_dropped = 0;  // unreachable-outboard-data drops
  };
  DrvStats drv_stats;

 private:
  sim::Task<void> recv_intr(std::vector<std::byte> frame);

  EtherSegment& seg_;
};

// The §5 interop conversion: replace every M_UIO mbuf in `pkt` with regular
// (cluster) mbufs holding copies of the user data, charging the memory-copy
// bandwidth. Completes any DmaSync the descriptors carried (the data has now
// been copied, so the writer may proceed). Returns the new head.
sim::Task<mbuf::Mbuf*> convert_uio_record(net::NetStack& stack, net::KernCtx ctx,
                                          mbuf::Mbuf* pkt);

}  // namespace nectar::drivers
