// The CAB device driver (§2.2 walk-through, §3, §4).
//
// Transmit: fully-formed packets arrive from IP. The driver prepends the
// HIPPI header, allocates an outboard packet buffer, and posts one SDMA
// request gathering the kernel headers and the data — regular mbufs (kernel
// memory), M_UIO mbufs (user memory, word-aligned by the socket layer) — in
// one pass, with the transmit checksum computed by the engine during the
// transfer. The MDMA transmit is chained to SDMA completion ("an MDMA
// request ... can be issued at the same time", §2.2). M_WCAB data
// retransmits with a header-only SDMA (header_rewrite) that reuses the saved
// body checksum (§4.3).
//
// Receive: the device auto-DMAs the first L words plus the hardware checksum
// and interrupts; the driver wraps the host-resident head in a regular mbuf,
// the outboard remainder (if any) in an M_WCAB mbuf, and feeds ip_input.
//
// Copy-out (§3): soreceive and the interop layer call copy_out/copy_out_raw
// to move outboard data to user/kernel memory via SDMA.
#pragma once

#include <deque>
#include <unordered_map>

#include "cab/cab_device.h"
#include "net/ifnet.h"
#include "net/netstack.h"

namespace nectar::drivers {

class CabDriver final : public net::Ifnet {
 public:
  CabDriver(std::string name, net::IpAddr addr, cab::CabDevice& dev,
            std::size_t mtu = 32 * 1024)
      : Ifnet(std::move(name), addr, mtu,
              net::kCapSingleCopy | net::kCapHwChecksum),
        dev_(dev) {
    dev_.mdma_recv().set_deliver([this](cab::RecvDesc&& d) { handle_recv(std::move(d)); });
  }

  // Static neighbour table (ARP stand-in): IP next hop -> HIPPI address.
  void add_neighbor(net::IpAddr ip, hippi::Addr ha) { neighbors_[ip] = ha; }

  sim::Task<void> output(net::KernCtx ctx, mbuf::Mbuf* pkt,
                         net::IpAddr next_hop) override;

  sim::Task<void> copy_out(net::KernCtx ctx, const mbuf::Wcab& w,
                           std::size_t wcab_off, mem::Uio dst,
                           mbuf::DmaSync* sync) override;

  sim::Task<void> copy_out_raw(net::KernCtx ctx, const mbuf::Wcab& w,
                               std::size_t wcab_off, std::span<std::byte> dst,
                               mbuf::DmaSync* sync) override;

  sim::Task<void> copy_in(net::KernCtx ctx, mem::Uio data, std::size_t header_space,
                          std::function<void(mbuf::Wcab)> done) override;

  // HIPPI(60) + IP(20) + TCP(20): the header block every data packet needs.
  [[nodiscard]] std::size_t tx_header_space() const override {
    return hippi::kHeaderSize + 40;
  }

  [[nodiscard]] cab::CabDevice& device() noexcept { return dev_; }

  [[nodiscard]] const mbuf::OutboardOwner* outboard_owner() const override {
    return &dev_;
  }

  struct DrvStats {
    std::uint64_t tx_fresh = 0;        // full SDMA transmissions
    std::uint64_t tx_rewrite = 0;      // WCAB header-rewrite retransmissions
    std::uint64_t tx_no_memory = 0;    // outboard allocation failures
    std::uint64_t rx_wcab = 0;         // packets delivered with outboard residue
    std::uint64_t rx_small = 0;        // fully auto-DMAed packets
    std::uint64_t copyouts = 0;
  };
  DrvStats drv_stats;

 private:
  void handle_recv(cab::RecvDesc&& desc);
  sim::Task<void> recv_intr(cab::RecvDesc desc);
  [[nodiscard]] hippi::Addr resolve(net::IpAddr next_hop) const;
  sim::Task<void> output_rewrite(net::KernCtx ctx, mbuf::Mbuf* pkt,
                                 net::IpAddr next_hop);

  cab::CabDevice& dev_;
  std::unordered_map<net::IpAddr, hippi::Addr> neighbors_;
};

}  // namespace nectar::drivers
