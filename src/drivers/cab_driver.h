// The CAB device driver (§2.2 walk-through, §3, §4).
//
// Transmit: fully-formed packets arrive from IP. The driver prepends the
// HIPPI header, allocates an outboard packet buffer, and posts one SDMA
// request gathering the kernel headers and the data — regular mbufs (kernel
// memory), M_UIO mbufs (user memory, word-aligned by the socket layer) — in
// one pass, with the transmit checksum computed by the engine during the
// transfer. The MDMA transmit is chained to SDMA completion ("an MDMA
// request ... can be issued at the same time", §2.2). M_WCAB data
// retransmits with a header-only SDMA (header_rewrite) that reuses the saved
// body checksum (§4.3).
//
// Receive: the device auto-DMAs the first L words plus the hardware checksum
// and interrupts; the driver wraps the host-resident head in a regular mbuf,
// the outboard remainder (if any) in an M_WCAB mbuf, and feeds ip_input.
//
// Copy-out (§3): soreceive and the interop layer call copy_out/copy_out_raw
// to move outboard data to user/kernel memory via SDMA.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "cab/cab_device.h"
#include "net/ifnet.h"
#include "net/netstack.h"

namespace nectar::drivers {

// Recovery tuning: how the driver watches the adaptor and how hard it tries
// to bring it back (all deterministic — no wall clock, no randomness).
struct RecoveryConfig {
  sim::Duration watchdog_period = sim::msec(10);
  sim::Duration reset_duration = sim::msec(5);    // board reinit time
  sim::Duration backoff_initial = sim::msec(10);  // first retry after a failed reset
  sim::Duration backoff_cap = sim::msec(160);     // exponential backoff ceiling
  sim::Duration dma_retry_delay = sim::usec(500); // copy-in/out repost spacing
  int dma_retry_limit = 20000;                    // per copy-out job
  // Degraded receive window: autodma covers this many bytes so packets arrive
  // fully host-resident and the software checksum can read them.
  std::size_t degraded_autodma_bytes = 64 * 1024;
};

// Large-segment offload tuning (opt-in via CabDriver::enable_offload).
struct OffloadConfig {
  // Send: wire MTUs the socket layer may stage into one outboard
  // super-segment; the MDMA engine cuts it at transmit time.
  std::size_t tso_max = 4;
  // Receive: completion descriptors held back per coalescing batch (one
  // interrupt per batch), and how long the first held descriptor may wait.
  std::size_t gro_budget = 8;
  sim::Duration gro_flush_window = sim::usec(100);
  // Merged-record payload cap (must leave room for IP/TCP headers under the
  // 64 KB IP length limit).
  std::size_t gro_max_bytes = 60000;
};

class CabDriver final : public net::Ifnet {
 public:
  CabDriver(std::string name, net::IpAddr addr, cab::CabDevice& dev,
            std::size_t mtu = 32 * 1024)
      : Ifnet(std::move(name), addr, mtu,
              net::kCapSingleCopy | net::kCapHwChecksum),
        dev_(dev) {
    dev_.mdma_recv().set_deliver([this](cab::RecvDesc&& d) { handle_recv(std::move(d)); });
  }

  // Static neighbour table (ARP stand-in): IP next hop -> HIPPI address.
  void add_neighbor(net::IpAddr ip, hippi::Addr ha) { neighbors_[ip] = ha; }

  sim::Task<void> output(net::KernCtx ctx, mbuf::Mbuf* pkt,
                         net::IpAddr next_hop) override;

  sim::Task<void> copy_out(net::KernCtx ctx, const mbuf::Wcab& w,
                           std::size_t wcab_off, mem::Uio dst,
                           mbuf::DmaSync* sync) override;

  sim::Task<void> copy_out_raw(net::KernCtx ctx, const mbuf::Wcab& w,
                               std::size_t wcab_off, std::span<std::byte> dst,
                               mbuf::DmaSync* sync) override;

  sim::Task<void> copy_in(net::KernCtx ctx, mem::Uio data, std::size_t header_space,
                          std::function<void(mbuf::Wcab)> done,
                          std::size_t seg_stride = 0) override;

  // HIPPI(60) + IP(20) + TCP(20): the header block every data packet needs.
  [[nodiscard]] std::size_t tx_header_space() const override {
    return hippi::kHeaderSize + 40;
  }

  // Multi-MTU staging quota: tso_max while the board is healthy, 1 when
  // offload is off or the driver degraded to the host bounce path (so a
  // degraded window never mixes hardware- and software-checksummed regions
  // inside one descriptor).
  [[nodiscard]] std::size_t tx_tso_segs() const override {
    if (!offload_enabled_ || degraded_ != 0 || state_ != AdaptorState::kUp)
      return 1;
    return oc_.tso_max;
  }

  // Weighted-fair arbitration class: forward the flow's weight to both DMA
  // engines' arbiters (no-op under kFifo/kRoundRobin).
  void set_flow_weight(std::uint32_t flow, std::uint32_t weight) override {
    dev_.sdma().set_flow_weight(flow, weight);
    dev_.mdma_xmit().set_flow_weight(flow, weight);
  }

  [[nodiscard]] cab::CabDevice& device() noexcept { return dev_; }

  [[nodiscard]] const mbuf::OutboardOwner* outboard_owner() const override {
    return &dev_;
  }

  struct DrvStats {
    std::uint64_t tx_fresh = 0;        // full SDMA transmissions
    std::uint64_t tx_rewrite = 0;      // WCAB header-rewrite retransmissions
    std::uint64_t tx_no_memory = 0;    // outboard allocation failures
    std::uint64_t rx_wcab = 0;         // packets delivered with outboard residue
    std::uint64_t rx_small = 0;        // fully auto-DMAed packets
    std::uint64_t copyouts = 0;
  };
  DrvStats drv_stats;

  // --- large-segment offload (TSO/GRO analogue) ------------------------------

  void enable_offload(const OffloadConfig& oc = {});
  [[nodiscard]] bool offload_enabled() const noexcept { return offload_enabled_; }
  [[nodiscard]] const OffloadConfig& offload_config() const noexcept { return oc_; }

  struct OffloadStats {
    std::uint64_t tx_super_segs = 0;     // multi-MTU descriptors transmitted
    std::uint64_t tx_wire_segs = 0;      // wire segments those fanned out to
    std::uint64_t tx_tso_bytes = 0;      // payload bytes sent via fan-out
    std::uint64_t tx_fallback_host_seg = 0;  // stagings forced back to 1 MTU
    std::uint64_t rx_batches = 0;        // coalescing flushes (one interrupt each)
    std::uint64_t rx_batched_descs = 0;  // descriptors that went through a batch
    std::uint64_t rx_merged_segs = 0;    // segments absorbed into a predecessor
    std::uint64_t rx_merged_bytes = 0;   // payload bytes those carried
    std::uint64_t rx_csum_verified = 0;  // per-segment hw checksums verified
    std::uint64_t rx_flush_budget = 0;   // flushes triggered by the budget
    std::uint64_t rx_flush_timer = 0;    // flushes triggered by the hold timer
    std::uint64_t rx_flush_barrier = 0;  // merge runs cut by a hole/flag/corruption
    std::uint64_t rx_gro_bypass = 0;     // descs delivered directly (degraded)
  };
  OffloadStats off_stats;

  // --- fault recovery & graceful degradation --------------------------------
  //
  // Opt-in (enable_recovery): a watchdog probes adaptor health, a reset state
  // machine un-wedges a stalled board with bounded exponential backoff, and
  // degraded modes reroute traffic to the host bounce path (copy + software
  // checksum — the paper's host-checksum baseline as a live failover) while
  // the checksum unit or network memory is unusable.

  enum class AdaptorState { kUp, kResetting };
  enum DegradeReason : unsigned {
    kDegradeCsum = 0x1,   // checksum unit failed: sw checksum, rx bounce
    kDegradeNoMem = 0x2,  // outboard memory unusable: stop pinning user data
  };

  struct RecoveryStats {
    std::uint64_t watchdog_fires = 0;
    std::uint64_t resets = 0;            // reset attempts started
    std::uint64_t reset_failures = 0;    // board still wedged after a reset
    std::uint64_t reset_completes = 0;
    std::uint64_t degrade_enter_csum = 0;
    std::uint64_t degrade_exit_csum = 0;
    std::uint64_t degrade_enter_nomem = 0;
    std::uint64_t degrade_exit_nomem = 0;
    std::uint64_t tx_dropped_resetting = 0;  // output() during a reset
    std::uint64_t tx_dma_failed = 0;         // fresh/rewrite SDMA failures
    std::uint64_t rx_bounced = 0;            // residue bounced to host memory
    std::uint64_t rx_bounce_failed = 0;      // bounce DMA failed; packet lost
    std::uint64_t copy_in_sw_csum = 0;       // staged with a software body sum
    std::uint64_t copy_in_retries = 0;
    std::uint64_t copyout_retries = 0;
    std::uint64_t copyouts_failed = 0;       // gave up; bytes never arrived
    std::uint64_t leaked_reclaimed = 0;      // pages recovered by reset
  };
  RecoveryStats rec_stats;

  void enable_recovery(const RecoveryConfig& rc = {});
  [[nodiscard]] bool recovery_enabled() const noexcept { return recovery_enabled_; }
  [[nodiscard]] bool resetting() const noexcept {
    return state_ == AdaptorState::kResetting;
  }
  [[nodiscard]] unsigned degrade_reasons() const noexcept { return degraded_; }
  // The error interrupt: fault hardware (or the injector standing in for it)
  // notifies the driver that something is wrong; the driver probes and reacts.
  void notify_fault();

 private:
  void handle_recv(cab::RecvDesc&& desc);
  sim::Task<void> recv_intr(cab::RecvDesc desc);
  sim::Task<void> deliver_desc(net::KernCtx ctx, cab::RecvDesc desc);
  // Receive coalescing: descriptors are held briefly and delivered in one
  // interrupt; in-order same-flow TCP segments merge into one record.
  struct GroEntry {
    cab::RecvDesc desc;
    std::uint64_t tel_key = 0;  // gro_hold span (0 = telemetry off)
  };
  [[nodiscard]] bool gro_active() const noexcept {
    return offload_enabled_ && oc_.gro_budget > 1 && degraded_ == 0 &&
           state_ == AdaptorState::kUp;
  }
  void gro_enqueue(cab::RecvDesc&& desc);
  void gro_flush();
  sim::Task<void> gro_drain();
  sim::Task<void> recv_batch_intr(std::vector<GroEntry> batch);
  sim::Task<void> deliver_merged(net::KernCtx ctx, std::vector<cab::RecvDesc> descs,
                                 std::size_t thl, std::size_t total_payload);
  [[nodiscard]] hippi::Addr resolve(net::IpAddr next_hop) const;
  sim::Task<void> output_rewrite(net::KernCtx ctx, mbuf::Mbuf* pkt,
                                 net::IpAddr next_hop);

  // Recovery internals.
  void arm_watchdog();
  void watchdog_fire();
  void check_health();
  void start_reset();
  void finish_reset();
  void enter_degraded(unsigned reason);
  void exit_degraded(unsigned reason);
  void apply_caps();
  void note_dma_failure() {
    if (recovery_enabled_) check_health();
  }
  // Unpin any M_UIO data in `chain` so a writer blocked on its DmaSync drain
  // wakes up even though the data never went outboard.
  static void unpin_uio(mbuf::Mbuf* chain);
  // Failure-retrying copy-out submission (shared by copy_out/copy_out_raw).
  struct CopyJob {
    cab::SdmaRequest req;
    mbuf::DmaSync* sync = nullptr;
    cab::Handle handle = 0;
    int attempts = 0;
  };
  void submit_copyout(std::shared_ptr<CopyJob> job);
  void retry_copyout(std::shared_ptr<CopyJob> job);
  // Failure-retrying copy-in submission, with software-body-sum fallback when
  // the checksum unit is down.
  struct CopyinJob {
    cab::SdmaRequest req;
    std::function<void(mbuf::Wcab)> done;
    cab::Handle handle = 0;
    std::uint32_t data_off = 0;
    std::uint32_t data_len = 0;
    int attempts = 0;
    std::uint64_t tel_key = 0;  // driver_stage span (0 = telemetry off)
  };
  void submit_copyin(std::shared_ptr<CopyinJob> job);

  cab::CabDevice& dev_;
  std::unordered_map<net::IpAddr, hippi::Addr> neighbors_;

  // Offload state.
  bool offload_enabled_ = false;
  OffloadConfig oc_;
  std::deque<GroEntry> gro_q_;
  bool gro_timer_armed_ = false;
  sim::TimerHandle gro_timer_;
  // Flushed batches awaiting delivery. A single drainer coroutine works
  // through them in flush order: concurrently spawned per-batch deliveries
  // would interleave at suspension points and reorder records, and TCP would
  // read the scramble as loss (dup-ack storms on a clean wire).
  std::deque<std::vector<GroEntry>> gro_pending_;
  bool gro_draining_ = false;

  // Recovery state.
  bool recovery_enabled_ = false;
  RecoveryConfig rc_;
  AdaptorState state_ = AdaptorState::kUp;
  unsigned degraded_ = 0;          // DegradeReason bitmask
  unsigned healthy_caps_ = 0;
  std::uint32_t healthy_autodma_words_ = 0;
  int reset_attempts_ = 0;         // consecutive failures this outage
  bool wd_armed_ = false;
  sim::TimerHandle wd_timer_;
  // No-progress detection: engine counters at the previous watchdog fire.
  std::uint64_t wd_last_sdma_reqs_ = 0;
  std::uint64_t wd_last_mdma_pkts_ = 0;
  std::uint64_t wd_last_alloc_failures_ = 0;
  bool wd_progress_valid_ = false;
};

}  // namespace nectar::drivers
