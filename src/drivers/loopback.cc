#include "drivers/loopback.h"

#include "net/ip.h"

#include "drivers/ether_driver.h"

namespace nectar::drivers {

sim::Task<void> LoopbackDriver::output(net::KernCtx ctx, mbuf::Mbuf* pkt,
                                       net::IpAddr next_hop) {
  (void)next_hop;
  auto& env = stack()->env();

  bool has_uio = false;
  for (mbuf::Mbuf* m = pkt; m != nullptr; m = m->next) {
    if (m->type() == mbuf::MbufType::kUio) has_uio = true;
    if (m->type() == mbuf::MbufType::kWcab) {
      ++if_stats.oerrors;
      env.pool.free_chain(pkt);
      co_return;
    }
  }
  if (has_uio) {
    ++if_stats.uio_converted;
    pkt = co_await convert_uio_record(*stack(), ctx, pkt);
  }

  ++if_stats.opackets;
  if_stats.obytes += static_cast<std::uint64_t>(mbuf::m_length(pkt));
  ++if_stats.ipackets;
  if_stats.ibytes += static_cast<std::uint64_t>(mbuf::m_length(pkt));

  // Re-enter input through the event queue (fresh kernel context, as a
  // software interrupt would).
  auto* self = this;
  mbuf::Mbuf* p = pkt;
  env.sim.after(0, [self, p] {
    net::KernCtx ictx{self->stack()->env().intr_acct, sim::Priority::Kernel};
    sim::spawn(self->stack()->ip().input(ictx, p, self));
  });
  co_return;
}

}  // namespace nectar::drivers
