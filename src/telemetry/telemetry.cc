#include "telemetry/telemetry.h"

#include <cinttypes>
#include <cstdio>

namespace nectar::telemetry {

int Telemetry::register_process(std::string name) {
  processes_.push_back(std::move(name));
  return static_cast<int>(processes_.size());
}

void Telemetry::span_begin(Stage s, int pid, std::uint64_t key,
                           std::uint32_t flow) {
  const auto k = std::make_pair(static_cast<std::uint8_t>(s), key);
  auto [it, inserted] = open_.try_emplace(k, OpenSpan{sim_.now(), pid, flow});
  if (!inserted) {
    // A retransmitted segment (same key) restarts its span: the span then
    // measures the latency of the copy that was actually delivered.
    ++re_begins_;
    it->second = OpenSpan{sim_.now(), pid, flow};
  }
  push_event('b', s, pid, flow, key);
}

std::optional<sim::Duration> Telemetry::span_end(Stage s, std::uint64_t key) {
  const auto k = std::make_pair(static_cast<std::uint8_t>(s), key);
  auto it = open_.find(k);
  if (it == open_.end()) {
    ++orphan_ends_;
    return std::nullopt;
  }
  const sim::Duration d = sim_.now() - it->second.start;
  push_event('e', s, it->second.pid, it->second.flow, key);
  stage_hist_[static_cast<std::size_t>(s)].record(
      static_cast<std::uint64_t>(d));
  ++completed_;
  open_.erase(it);
  return d;
}

void Telemetry::register_gauge(std::string name, int pid,
                               std::function<double()> fn) {
  gauges_.push_back(Gauge{std::move(name), pid, std::move(fn), {}});
}

void Telemetry::sample_gauges() {
  const sim::Time now = sim_.now();
  for (auto& g : gauges_) g.samples.emplace_back(now, g.fn());
}

void Telemetry::arm_ticker() {
  ticker_ = sim_.timer_after(ticker_period_, [this] {
    sample_gauges();
    if (ticker_on_) arm_ticker();
  });
}

void Telemetry::start_ticker(sim::Duration period) {
  stop_ticker();
  ticker_period_ = period;
  ticker_on_ = true;
  sample_gauges();
  arm_ticker();
}

void Telemetry::stop_ticker() {
  ticker_on_ = false;
  ticker_.cancel();
}

namespace {

// Trace timestamps are microseconds (the Chrome trace unit); sim time is
// integral ns, so this is exact to 1/1000 us and deterministic.
double to_trace_ts(sim::Time t) { return static_cast<double>(t) / 1000.0; }

std::string key_id(std::uint64_t key) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, key);
  return buf;
}

}  // namespace

core::Json Telemetry::chrome_trace_json() const {
  core::Json root = core::Json::object();
  root.set("schema_version", kSchemaVersion);
  core::Json events = core::Json::array();

  for (std::size_t i = 0; i < processes_.size(); ++i) {
    core::Json m = core::Json::object();
    m.set("ph", "M");
    m.set("name", "process_name");
    m.set("pid", static_cast<std::int64_t>(i + 1));
    m.set("tid", 0);
    m.set("ts", 0.0);
    core::Json args = core::Json::object();
    args.set("name", processes_[i]);
    m.set("args", std::move(args));
    events.push_back(std::move(m));
  }

  for (const auto& e : events_) {
    core::Json j = core::Json::object();
    j.set("ph", std::string(1, e.ph));
    j.set("cat", stage_name(e.stage));
    j.set("name", stage_name(e.stage));
    j.set("id", key_id(e.key));
    j.set("pid", e.pid);
    j.set("tid", static_cast<int>(e.stage) + 1);
    j.set("ts", to_trace_ts(e.ts));
    core::Json args = core::Json::object();
    args.set("flow", static_cast<std::int64_t>(e.flow));
    j.set("args", std::move(args));
    events.push_back(std::move(j));
  }

  for (const auto& g : gauges_) {
    for (const auto& [t, v] : g.samples) {
      core::Json j = core::Json::object();
      j.set("ph", "C");
      j.set("name", g.name);
      j.set("pid", g.pid);
      j.set("tid", 0);
      j.set("ts", to_trace_ts(t));
      core::Json args = core::Json::object();
      args.set("value", v);
      j.set("args", std::move(args));
      events.push_back(std::move(j));
    }
  }

  root.set("traceEvents", std::move(events));
  return root;
}

core::Json Telemetry::metrics_json() const {
  core::Json root = core::Json::object();
  root.set("schema_version", kSchemaVersion);
  root.set("now_ns", static_cast<std::int64_t>(sim_.now()));

  core::Json procs = core::Json::array();
  for (const auto& p : processes_) procs.push_back(p);
  root.set("processes", std::move(procs));

  core::Json spans = core::Json::object();
  spans.set("open", static_cast<std::uint64_t>(open_.size()));
  spans.set("completed", completed_);
  spans.set("orphan_ends", orphan_ends_);
  spans.set("re_begins", re_begins_);
  spans.set("dropped_events", dropped_events_);
  spans.set("trace_events", static_cast<std::uint64_t>(events_.size()));
  root.set("spans", std::move(spans));

  core::Json stages = core::Json::object();
  for (std::size_t i = 0; i < kStageCount; ++i)
    stages.set(stage_name(static_cast<Stage>(i)), stage_hist_[i].to_json());
  root.set("stages", std::move(stages));

  core::Json fm = core::Json::object();
  for (const auto& [name, m] : flow_metrics_) {
    core::Json e = core::Json::object();
    e.set("aggregate", m.aggregate.to_json());
    core::Json flows = core::Json::object();
    for (const auto& [flow, h] : m.per_flow)
      flows.set(std::to_string(flow), h.to_json());
    e.set("flows", std::move(flows));
    fm.set(name, std::move(e));
  }
  root.set("flow_metrics", std::move(fm));

  core::Json ctrs = core::Json::object();
  for (const auto& [name, v] : counters_) ctrs.set(name, v);
  root.set("counters", std::move(ctrs));

  core::Json hs = core::Json::object();
  for (const auto& [name, h] : hists_) hs.set(name, h.to_json());
  root.set("histograms", std::move(hs));

  core::Json ts = core::Json::array();
  for (const auto& g : gauges_) {
    core::Json e = core::Json::object();
    e.set("name", g.name);
    e.set("pid", g.pid);
    core::Json times = core::Json::array();
    core::Json values = core::Json::array();
    for (const auto& [t, v] : g.samples) {
      times.push_back(static_cast<std::int64_t>(t));
      values.push_back(v);
    }
    e.set("t_ns", std::move(times));
    e.set("value", std::move(values));
    ts.push_back(std::move(e));
  }
  root.set("timeseries", std::move(ts));
  return root;
}

core::Json Telemetry::merged_metrics_json(
    const std::vector<const Telemetry*>& shards) {
  core::Json root = core::Json::object();
  root.set("schema_version", kSchemaVersion);
  root.set("shards", static_cast<std::int64_t>(shards.size()));

  sim::Time now = 0;
  std::uint64_t open = 0, completed = 0, orphan_ends = 0, re_begins = 0,
                dropped = 0, trace_events = 0;
  LogHistogram stages[kStageCount];
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, LogHistogram> hists;
  std::map<std::string, FlowMetric> flow_metrics;

  core::Json per_shard = core::Json::array();
  core::Json timeseries = core::Json::array();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Telemetry& t = *shards[s];
    if (t.sim_.now() > now) now = t.sim_.now();
    open += t.open_.size();
    completed += t.completed_;
    orphan_ends += t.orphan_ends_;
    re_begins += t.re_begins_;
    dropped += t.dropped_events_;
    trace_events += t.events_.size();
    for (std::size_t i = 0; i < kStageCount; ++i)
      stages[i].merge(t.stage_hist_[i]);
    for (const auto& [name, v] : t.counters_) counters[name] += v;
    for (const auto& [name, h] : t.hists_) hists[name].merge(h);
    for (const auto& [name, m] : t.flow_metrics_) {
      FlowMetric& dst = flow_metrics[name];
      dst.aggregate.merge(m.aggregate);
      for (const auto& [flow, h] : m.per_flow) dst.per_flow[flow].merge(h);
    }
    for (const auto& g : t.gauges_) {
      core::Json e = core::Json::object();
      e.set("shard", static_cast<std::int64_t>(s));
      e.set("name", g.name);
      e.set("pid", g.pid);
      core::Json times = core::Json::array();
      core::Json values = core::Json::array();
      for (const auto& [tt, v] : g.samples) {
        times.push_back(static_cast<std::int64_t>(tt));
        values.push_back(v);
      }
      e.set("t_ns", std::move(times));
      e.set("value", std::move(values));
      timeseries.push_back(std::move(e));
    }

    core::Json sj = core::Json::object();
    sj.set("shard", static_cast<std::int64_t>(s));
    core::Json procs = core::Json::array();
    for (const auto& p : t.processes_) procs.push_back(p);
    sj.set("processes", std::move(procs));
    sj.set("now_ns", static_cast<std::int64_t>(t.sim_.now()));
    sj.set("open", static_cast<std::uint64_t>(t.open_.size()));
    sj.set("completed", t.completed_);
    sj.set("orphan_ends", t.orphan_ends_);
    per_shard.push_back(std::move(sj));
  }
  root.set("now_ns", static_cast<std::int64_t>(now));

  core::Json spans = core::Json::object();
  spans.set("open", open);
  spans.set("completed", completed);
  spans.set("orphan_ends", orphan_ends);
  spans.set("re_begins", re_begins);
  spans.set("dropped_events", dropped);
  spans.set("trace_events", trace_events);
  root.set("spans", std::move(spans));

  core::Json st = core::Json::object();
  for (std::size_t i = 0; i < kStageCount; ++i)
    st.set(stage_name(static_cast<Stage>(i)), stages[i].to_json());
  root.set("stages", std::move(st));

  core::Json fm = core::Json::object();
  for (const auto& [name, m] : flow_metrics) {
    core::Json e = core::Json::object();
    e.set("aggregate", m.aggregate.to_json());
    core::Json flows = core::Json::object();
    for (const auto& [flow, h] : m.per_flow)
      flows.set(std::to_string(flow), h.to_json());
    e.set("flows", std::move(flows));
    fm.set(name, std::move(e));
  }
  root.set("flow_metrics", std::move(fm));

  core::Json ctrs = core::Json::object();
  for (const auto& [name, v] : counters) ctrs.set(name, v);
  root.set("counters", std::move(ctrs));

  core::Json hs = core::Json::object();
  for (const auto& [name, h] : hists) hs.set(name, h.to_json());
  root.set("histograms", std::move(hs));

  root.set("timeseries", std::move(timeseries));
  root.set("per_shard", std::move(per_shard));
  return root;
}

}  // namespace nectar::telemetry
