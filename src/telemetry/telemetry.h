// Telemetry: the opt-in observability registry for a whole testbed.
//
// One instance serves every host plus the wire. It records three kinds of
// data, all deterministic for a given seed and workload:
//
//  * Spans — begin/end pairs keyed by (stage, 64-bit key) marking one
//    packet's residence in one datapath stage. Ends feed per-stage
//    LogHistograms; begin/end events accumulate in a bounded log exported as
//    Chrome trace-event JSON ("b"/"e" async events, loadable in Perfetto).
//  * Metrics — named counters and LogHistograms, including per-flow series
//    (record_flow updates an aggregate and a per-flow histogram).
//  * Gauges — named closures sampled on a sim-time ticker into time series;
//    exported both as JSON arrays and as Chrome "C" counter tracks.
//
// Cost model: when telemetry is off there is no Telemetry object at all —
// every instrumentation site guards on a null pointer in HostEnv (or the
// engine), so the disabled cost is one predictable branch (asserted in
// bench/wallclock). When on, span ops are an O(log n) map touch plus an
// append; histogram records are O(1).
//
// Key discipline: span keys must be globally unique per live span within a
// stage. Producers with their own id counters (SDMA/MDMA requests, outboard
// allocations, wire frames) prefix them with a key namespace from
// alloc_key_namespace(); ad-hoc spans take next_key(); TCP segments use
// telemetry::segment_key so sender and receiver derive the same key
// independently.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/json.h"
#include "sim/event_queue.h"
#include "telemetry/histogram.h"
#include "telemetry/stage.h"

namespace nectar::telemetry {

class Telemetry {
 public:
  // Bumped whenever the export layout changes; mirrored by every BENCH_*.json.
  static constexpr int kSchemaVersion = 1;

  explicit Telemetry(sim::Simulator& sim) : sim_(sim) {}
  ~Telemetry() { stop_ticker(); }
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }

  // --- identity ------------------------------------------------------------
  // A "process" is one trace track group (a host, or the wire). Returns the
  // trace pid (1-based; 0 means unregistered).
  int register_process(std::string name);

  // Fresh span key for producers without a natural id.
  [[nodiscard]] std::uint64_t next_key() noexcept { return ++key_seq_; }
  // High-bits salt for producers with their own dense id counters: the
  // caller ORs its ids into the low 40 bits so two engines' id=7 requests
  // cannot collide in the open-span table.
  [[nodiscard]] std::uint64_t alloc_key_namespace() noexcept {
    return ++ns_seq_ << 40;
  }

  // --- spans ---------------------------------------------------------------
  void span_begin(Stage s, int pid, std::uint64_t key, std::uint32_t flow = 0);
  // Returns the span duration when `key` was open, nullopt on an orphan end
  // (no matching begin — counted, not fatal: impaired wires duplicate
  // segments and resets abort requests).
  std::optional<sim::Duration> span_end(Stage s, std::uint64_t key);

  [[nodiscard]] std::size_t open_spans() const noexcept { return open_.size(); }
  [[nodiscard]] std::uint64_t spans_completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t orphan_ends() const noexcept { return orphan_ends_; }
  [[nodiscard]] std::uint64_t re_begins() const noexcept { return re_begins_; }
  [[nodiscard]] std::uint64_t dropped_events() const noexcept { return dropped_events_; }
  [[nodiscard]] const LogHistogram& stage_hist(Stage s) const noexcept {
    return stage_hist_[static_cast<std::size_t>(s)];
  }
  // Cap on retained trace events (default 1M); excess increments
  // dropped_events but histograms keep recording.
  void set_max_events(std::size_t n) noexcept { max_events_ = n; }

  // --- metrics -------------------------------------------------------------
  // Named counter; the returned pointer is stable — hot paths look it up
  // once and bump through it.
  [[nodiscard]] std::uint64_t* counter(const std::string& name) {
    return &counters_[name];
  }
  [[nodiscard]] LogHistogram& histogram(const std::string& name) {
    return hists_[name];
  }
  // Aggregate + per-flow histogram update (RTT, one-way segment latency).
  void record_flow(const std::string& metric, std::uint32_t flow,
                   std::uint64_t value) {
    auto& m = flow_metrics_[metric];
    m.aggregate.record(value);
    m.per_flow[flow].record(value);
  }

  // --- gauges + ticker -----------------------------------------------------
  void register_gauge(std::string name, int pid, std::function<double()> fn);
  // Sample every gauge now and then every `period` of sim time. The ticker
  // is a self-rearming cancelable timer: call stop_ticker() before draining
  // the simulator to completion or it will keep the event queue alive.
  void start_ticker(sim::Duration period);
  void stop_ticker();
  [[nodiscard]] bool ticker_running() const noexcept { return ticker_on_; }

  // --- export --------------------------------------------------------------
  // Chrome trace-event JSON: {"schema_version", "traceEvents":[...]} with
  // "M" process_name metadata, "b"/"e" async span events (ts in us), and
  // "C" counter events per gauge sample.
  [[nodiscard]] core::Json chrome_trace_json() const;
  // Metrics document: per-stage span histograms, flow metrics, counters,
  // named histograms, gauge time series, span bookkeeping.
  [[nodiscard]] core::Json metrics_json() const;
  // Combine per-shard registries (in shard order) into one document with the
  // same shape as metrics_json: counters summed, histograms and flow metrics
  // merged, gauge series concatenated, plus a "shards" array of per-registry
  // span bookkeeping. Deterministic: depends only on registry contents and
  // order, never on the worker schedule that produced them. Spans that cross
  // a shard boundary (a segment sent from one host's registry and received
  // in another's) surface as matched open/orphan_end counts — deterministic,
  // so the oracle comparison still holds bit-for-bit.
  [[nodiscard]] static core::Json merged_metrics_json(
      const std::vector<const Telemetry*>& shards);
  bool write_chrome_trace(const std::string& path) const {
    return core::write_json_file(path, chrome_trace_json());
  }
  bool write_metrics(const std::string& path) const {
    return core::write_json_file(path, metrics_json());
  }

 private:
  struct TraceEvent {
    char ph;  // 'b' | 'e'
    Stage stage;
    int pid;
    std::uint32_t flow;
    std::uint64_t key;
    sim::Time ts;
  };
  struct OpenSpan {
    sim::Time start;
    int pid;
    std::uint32_t flow;
  };
  struct Gauge {
    std::string name;
    int pid;
    std::function<double()> fn;
    std::vector<std::pair<sim::Time, double>> samples;
  };
  struct FlowMetric {
    LogHistogram aggregate;
    std::map<std::uint32_t, LogHistogram> per_flow;
  };

  void push_event(char ph, Stage s, int pid, std::uint32_t flow,
                  std::uint64_t key) {
    if (events_.size() >= max_events_) {
      ++dropped_events_;
      return;
    }
    events_.push_back(TraceEvent{ph, s, pid, flow, key, sim_.now()});
  }
  void sample_gauges();
  void arm_ticker();

  sim::Simulator& sim_;
  std::vector<std::string> processes_;
  std::uint64_t key_seq_ = 0;
  std::uint64_t ns_seq_ = 0;

  std::map<std::pair<std::uint8_t, std::uint64_t>, OpenSpan> open_;
  LogHistogram stage_hist_[kStageCount];
  std::uint64_t completed_ = 0;
  std::uint64_t orphan_ends_ = 0;
  std::uint64_t re_begins_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::vector<TraceEvent> events_;
  std::size_t max_events_ = 1u << 20;

  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, LogHistogram> hists_;
  std::map<std::string, FlowMetric> flow_metrics_;

  std::vector<Gauge> gauges_;
  sim::Duration ticker_period_ = 0;
  bool ticker_on_ = false;
  sim::TimerHandle ticker_;
};

}  // namespace nectar::telemetry
