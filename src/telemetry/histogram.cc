#include "telemetry/histogram.h"

#include <algorithm>

namespace nectar::telemetry {

void LogHistogram::merge(const LogHistogram& o) {
  if (o.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kBuckets, 0);
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

void LogHistogram::reset() {
  counts_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

std::uint64_t LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  auto rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_));
  // ceil() without floating-point edge cases: bump unless already exact.
  if (static_cast<double>(rank) * 100.0 < p * static_cast<double>(count_)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += counts_[i];
    if (cum >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

core::Json LogHistogram::to_json() const {
  core::Json j = core::Json::object();
  j.set("count", count_);
  j.set("sum", sum_);
  j.set("min", min());
  j.set("max", max_);
  j.set("mean", mean());
  j.set("p50", percentile(50.0));
  j.set("p90", percentile(90.0));
  j.set("p99", percentile(99.0));
  j.set("p999", percentile(99.9));
  return j;
}

}  // namespace nectar::telemetry
