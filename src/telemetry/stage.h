// Datapath stages for span tracing. A span is one packet's (or request's)
// residence in one stage; the stage enum doubles as the Chrome trace
// category and the per-stage histogram key, so the set below is the
// vocabulary of every latency export.
#pragma once

#include <cstdint>
#include <utility>

namespace nectar::telemetry {

enum class Stage : std::uint8_t {
  kSosend = 0,   // sosend staging: copy_in posted -> WCAB appended to snd buf
  kSegment,      // tcp_output send_segment -> remote tcp_input accept_data
  kDriverStage,  // driver copy_in job: created -> staging SDMA delivered a WCAB
  kSdmaQueue,    // SDMA request: posted -> popped from the arbitration queue
  kSdmaXfer,     // SDMA request: engine start -> completion (or abort)
  kMdmaQueue,    // MDMA transmit: posted -> popped from the arbitration queue
  kMdmaXfer,     // MDMA transmit: engine start -> completion (or abort)
  kOutboard,     // network-memory residency: alloc -> last reference released
  kLinkTransit,  // wire propagation: submit -> remote hippi_receive
  kRecvDma,      // receive staging: frame landed outboard -> delivered to driver
  kSoreceive,    // soreceive delivery: recv unblocked -> bytes in user buffer
  kTsoFanout,    // MDMA large-segment fan-out: first wire segment cut -> last
                 // segment on the wire (one span per super-segment)
  kGroHold,      // receive coalescing residency: descriptor queued for merge
                 // -> batch interrupt drained it
  kCount,
};

[[nodiscard]] constexpr const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kSosend: return "sosend";
    case Stage::kSegment: return "segment";
    case Stage::kDriverStage: return "driver_stage";
    case Stage::kSdmaQueue: return "sdma_queue";
    case Stage::kSdmaXfer: return "sdma_xfer";
    case Stage::kMdmaQueue: return "mdma_queue";
    case Stage::kMdmaXfer: return "mdma_xfer";
    case Stage::kOutboard: return "outboard";
    case Stage::kLinkTransit: return "link_transit";
    case Stage::kRecvDma: return "recv_dma";
    case Stage::kSoreceive: return "soreceive";
    case Stage::kTsoFanout: return "tso_fanout";
    case Stage::kGroHold: return "gro_hold";
    case Stage::kCount: break;
  }
  return "?";
}

constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

// 64-bit finalizer (splitmix64 tail): full-avalanche, cheap, dependency-free.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Span key for one TCP data segment. The sender keys the begin with its own
// (local, foreign) view of the connection and the receiver keys the end with
// the mirrored view, so the endpoints are canonicalized (sorted) before
// hashing — both sides compute the same key for the same segment.
[[nodiscard]] constexpr std::uint64_t segment_key(std::uint32_t laddr,
                                                 std::uint16_t lport,
                                                 std::uint32_t faddr,
                                                 std::uint16_t fport,
                                                 std::uint32_t seq) noexcept {
  std::uint64_t a = (static_cast<std::uint64_t>(laddr) << 16) | lport;
  std::uint64_t b = (static_cast<std::uint64_t>(faddr) << 16) | fport;
  if (a > b) std::swap(a, b);
  return mix64(a * 0x9e3779b97f4a7c15ull ^ b) ^ seq;
}

}  // namespace nectar::telemetry
