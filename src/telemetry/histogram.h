// Log2-bucketed histogram (HdrHistogram-style): each power-of-two range is
// split into 16 linear sub-buckets, so any recorded value lands in a bucket
// whose width is at most 1/16 of its lower edge — percentile queries are
// exact to ~6% relative error while record() stays a handful of ALU ops and
// one array increment. Values up to 2^64-1 are representable; the bucket
// table is 976 entries (allocated lazily on first record).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/json.h"

namespace nectar::telemetry {

class LogHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;  // sub-buckets per power of two
  // Indices 0..15 are exact; blocks for msb 4..63 follow.
  static constexpr std::size_t kBuckets = kSub * (64 - kSubBits + 1);

  void record(std::uint64_t v) {
    if (counts_.empty()) counts_.assign(kBuckets, 0);
    ++counts_[bucket_index(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const LogHistogram& o);
  void reset();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  // Value at percentile p (0..100]: the upper edge of the bucket holding the
  // rank-ceil(p/100*count) sample, clamped to the observed max — never less
  // than the true percentile, and at most ~1/16 above it.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  // {count, sum, min, max, mean, p50, p90, p99, p999}
  [[nodiscard]] core::Json to_json() const;

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBits;
    return (static_cast<std::size_t>(msb - kSubBits + 1) << kSubBits) +
           static_cast<std::size_t>((v >> shift) & (kSub - 1));
  }

  // Largest value mapping to bucket `idx` (the bucket's upper edge).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t idx) noexcept {
    if (idx < kSub) return idx;
    const std::size_t block = idx >> kSubBits;   // >= 1
    const std::uint64_t sub = idx & (kSub - 1);
    const int msb = static_cast<int>(block) + kSubBits - 1;
    const int shift = msb - kSubBits;
    return ((static_cast<std::uint64_t>(kSub) + sub + 1) << shift) - 1;
  }

 private:
  std::vector<std::uint64_t> counts_;  // empty until the first record
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace nectar::telemetry
