// CAB network memory: the outboard packet buffer pool (§2.1, §2.2).
//
// "Packets must start on a page boundary in CAB memory, and all but the last
//  page must be full pages" — so a packet buffer is a run of CAB pages, and
// allocation is page-granular. Buffers are refcounted: TCP may hold an
// M_WCAB reference for retransmission while an MDMA transmit is in flight,
// and m_copym shares rather than copies.
//
// The memory also stores, per packet, the transmit *body checksum* the SDMA
// engine saved when the data first flowed outboard; a retransmission only
// transfers a fresh header and the engine combines its new seed with this
// saved sum (§4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace nectar::telemetry {
class Telemetry;
}

namespace nectar::cab {

using Handle = std::uint32_t;

class NetworkMemory {
 public:
  explicit NetworkMemory(std::size_t bytes, std::size_t page_size = 4096);

  // Allocate a packet buffer of `len` bytes (rounded up to whole pages,
  // contiguous). Returns nullopt when memory is exhausted (counted).
  std::optional<Handle> alloc(std::size_t len);

  void retain(Handle h);
  void release(Handle h);

  [[nodiscard]] std::span<std::byte> bytes(Handle h, std::size_t off, std::size_t len);
  [[nodiscard]] std::span<const std::byte> bytes(Handle h, std::size_t off,
                                                 std::size_t len) const;

  [[nodiscard]] std::size_t packet_len(Handle h) const;
  [[nodiscard]] int refcount(Handle h) const;

  void set_body_sum(Handle h, std::uint32_t sum);
  [[nodiscard]] std::optional<std::uint32_t> body_sum(Handle h) const;

  // Per-slice body sums for large-segment offload: the staging SDMA saves one
  // partial sum per `stride`-byte slice of the packet body (the last slice may
  // be short) so the MDMA fan-out — and header-only tail retransmissions — can
  // produce per-wire-segment checksums without re-reading the data, even while
  // the summation datapath is degraded.
  void set_seg_sums(Handle h, std::size_t base, std::size_t stride,
                    std::size_t len, std::vector<std::uint32_t> sums);
  // Sum of the exact slice [abs_off, abs_off+len) — nullopt unless it lands on
  // a saved slice boundary with a matching length.
  [[nodiscard]] std::optional<std::uint32_t> seg_slice_sum(Handle h,
                                                           std::size_t abs_off,
                                                           std::size_t len) const;
  // Combined sum of everything from abs_off (a slice boundary) to the end of
  // the saved region, with the correct odd-offset byte swaps.
  [[nodiscard]] std::optional<std::uint32_t> tail_sum(Handle h,
                                                      std::size_t abs_off) const;

  // --- fault injection -------------------------------------------------------

  // Forced exhaustion: every alloc fails (counted) until cleared, as if the
  // free-page accounting had wedged.
  void set_force_exhausted(bool f) noexcept { force_exhausted_ = f; }
  [[nodiscard]] bool force_exhausted() const noexcept { return force_exhausted_; }

  // Leak `npages` pages: they are marked used but belong to no packet, so
  // only reclaim_leaked() — the adaptor reset path — gets them back. Returns
  // how many pages were actually taken (free memory may run out first).
  std::size_t leak_pages(std::size_t npages);
  std::size_t reclaim_leaked();
  [[nodiscard]] std::size_t leaked_pages() const noexcept { return leaked_.size(); }

  [[nodiscard]] std::size_t page_size() const noexcept { return page_size_; }
  [[nodiscard]] std::size_t total_bytes() const noexcept { return store_.size(); }
  [[nodiscard]] std::size_t free_bytes() const noexcept { return free_pages_ * page_size_; }
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    return store_.size() - free_bytes();
  }
  [[nodiscard]] std::size_t live_packets() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t alloc_failures() const noexcept { return alloc_failures_; }
  // Occupancy high-water marks: how close the flows came to exhausting the
  // outboard packet memory (pages, not the possibly-shorter packet lengths).
  [[nodiscard]] std::size_t max_used_bytes() const noexcept {
    return max_used_pages_ * page_size_;
  }
  [[nodiscard]] std::size_t max_live_packets() const noexcept { return max_live_; }

  // Opt-in span tracing: outboard residency (alloc -> last ref released) per
  // packet buffer. Handles recycle, so spans are keyed by an allocation
  // sequence number, not the handle.
  void set_telemetry(telemetry::Telemetry* tel, int pid);

 private:
  struct SegSums {
    std::size_t base = 0;    // byte offset of the first slice
    std::size_t stride = 0;  // slice length (last slice may be shorter)
    std::size_t len = 0;     // total bytes covered
    std::vector<std::uint32_t> sums;
  };

  struct Slot {
    std::size_t first_page = 0;
    std::size_t npages = 0;
    std::size_t len = 0;
    int refs = 0;
    std::optional<std::uint32_t> body_sum;
    std::optional<SegSums> seg_sums;
    bool live = false;
    std::uint64_t tel_key = 0;
  };

  const Slot& slot(Handle h) const;
  Slot& slot(Handle h);

  std::size_t page_size_;
  std::vector<std::byte> store_;
  std::vector<bool> page_used_;
  std::size_t free_pages_;
  std::vector<Slot> slots_;
  std::vector<Handle> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t alloc_failures_ = 0;
  std::size_t next_fit_ = 0;  // rotating first-fit cursor
  std::size_t max_used_pages_ = 0;
  std::size_t max_live_ = 0;
  telemetry::Telemetry* tel_ = nullptr;
  int tel_pid_ = 0;
  std::uint64_t tel_ns_ = 0;
  std::uint64_t tel_seq_ = 0;
  bool force_exhausted_ = false;
  std::vector<std::size_t> leaked_;  // page indices held by the leak fault
};

}  // namespace nectar::cab
