#include "cab/sdma.h"

#include <cstring>
#include <stdexcept>

#include "checksum/wire.h"
#include "telemetry/telemetry.h"

namespace nectar::cab {

void SdmaEngine::set_telemetry(telemetry::Telemetry* tel, int pid) {
  tel_ = tel;
  tel_pid_ = pid;
  tel_ns_ = tel ? tel->alloc_key_namespace() : 0;
}

bool SdmaEngine::post(SdmaRequest r) {
  if (queue_space() == 0) return false;
  for (const auto& seg : r.segs) {
    if (seg.vaddr % 4 != 0)
      throw std::logic_error(
          "SdmaEngine: misaligned host address (driver must use the copy path)");
    if (seg.bytes.empty())
      throw std::logic_error("SdmaEngine: empty segment");
  }
  r.id = next_id_++;
  if (tel_ != nullptr)
    tel_->span_begin(telemetry::Stage::kSdmaQueue, tel_pid_, tkey(r.id), r.flow);
  q_.push(std::move(r));
  kick();
  return true;
}

void SdmaEngine::kick() {
  if (busy_ || stalled_ || q_.empty()) return;
  busy_ = true;
  SdmaRequest r = q_.pop();
  if (tel_ != nullptr) {
    tel_->span_end(telemetry::Stage::kSdmaQueue, tkey(r.id));
    tel_->span_begin(telemetry::Stage::kSdmaXfer, tel_pid_, tkey(r.id), r.flow);
  }

  std::size_t total = 0;
  for (const auto& seg : r.segs) total += seg.bytes.size();
  const sim::Duration t = cfg_.setup + sim::transfer_time(
                                           static_cast<std::int64_t>(total),
                                           cfg_.bandwidth_bps);
  stats_.busy_time += t;

  auto shared = std::make_shared<SdmaRequest>(std::move(r));
  const std::uint64_t epoch = epoch_;
  sim_.after(t, [this, shared, epoch] {
    if (epoch != epoch_) {
      // abort_all ran while this transfer was on the bus: the engine has been
      // reinitialized, so report failure and leave busy_/queue state alone —
      // abort_all already reset them.
      shared->failed = true;
      ++stats_.requests;
      ++stats_.aborted;
      if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kSdmaXfer, tkey(shared->id));
      if (shared->on_complete) shared->on_complete(*shared);
      return;
    }
    execute(*shared);
    busy_ = false;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kSdmaXfer, tkey(shared->id));
    if (shared->on_complete) shared->on_complete(*shared);
    kick();
  });
}

void SdmaEngine::abort_all() {
  ++epoch_;  // disowns the in-flight transfer, if any
  busy_ = false;
  // Drain first: a failure callback may post a fresh request, which belongs
  // to the new epoch and must not be swept up in this abort.
  std::vector<SdmaRequest> dropped;
  while (!q_.empty()) dropped.push_back(q_.pop());
  for (auto& r : dropped) {
    r.failed = true;
    ++stats_.requests;
    ++stats_.aborted;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kSdmaQueue, tkey(r.id));
    if (r.on_complete) r.on_complete(r);
  }
}

void SdmaEngine::execute(SdmaRequest& r) {
  ++stats_.requests;
  if (inject_errors_ > 0) {
    --inject_errors_;
    r.failed = true;
    ++stats_.errors;
    return;
  }
  // A failed checksum unit aborts (parity check) any transfer that needs a
  // fresh body sum; header rewrites only use the combine adder and proceed.
  if (r.csum_enable && !r.header_rewrite && csum_.failed()) {
    r.failed = true;
    ++stats_.errors;
    return;
  }
  std::size_t total = 0;
  for (const auto& seg : r.segs) total += seg.bytes.size();

  if (r.dir == SdmaRequest::Dir::kToCab) {
    stats_.bytes_to_cab += total;
    auto dst = nm_.bytes(r.handle, r.cab_off, total);
    std::size_t pos = 0;
    for (const auto& seg : r.segs) {
      std::memcpy(dst.data() + pos, seg.bytes.data(), seg.bytes.size());
      pos += seg.bytes.size();
    }
    if (r.csum_enable && r.body_sum_only) {
      // Staging: the packet body flows outboard before its headers exist;
      // save its checksum for the header SDMA that follows (§4.3).
      nm_.set_body_sum(r.handle, csum_.sum_from(dst, r.skip_words));
      return;
    }
    if (r.csum_enable) {
      // The request stream begins at cab_off == 0 for checksummed packets
      // (a fully-formed packet, §2.2), so skip_words counts from the start
      // of the transfer.
      std::uint32_t body;
      if (r.header_rewrite) {
        auto saved = nm_.body_sum(r.handle);
        if (!saved)
          throw std::logic_error("SdmaEngine: header rewrite without saved body sum");
        body = *saved;
      } else {
        body = csum_.sum_from(dst, r.skip_words);
        nm_.set_body_sum(r.handle, body);
      }
      auto field = nm_.bytes(r.handle, r.csum_offset, 2);
      const std::uint16_t seed = wire::load_be16(field.data());
      wire::store_be16(field.data(), ChecksumEngine::finish_with_seed(seed, body));
    }
  } else {
    stats_.bytes_from_cab += total;
    auto src = nm_.bytes(r.handle, r.cab_off, total);
    std::size_t pos = 0;
    for (const auto& seg : r.segs) {
      std::memcpy(seg.bytes.data(), src.data() + pos, seg.bytes.size());
      pos += seg.bytes.size();
    }
  }
}

}  // namespace nectar::cab
