#include "cab/sdma.h"

#include <cstring>
#include <stdexcept>

#include "checksum/wire.h"

namespace nectar::cab {

bool SdmaEngine::post(SdmaRequest r) {
  if (queue_space() == 0) return false;
  for (const auto& seg : r.segs) {
    if (seg.vaddr % 4 != 0)
      throw std::logic_error(
          "SdmaEngine: misaligned host address (driver must use the copy path)");
    if (seg.bytes.empty())
      throw std::logic_error("SdmaEngine: empty segment");
  }
  r.id = next_id_++;
  q_.push(std::move(r));
  kick();
  return true;
}

void SdmaEngine::kick() {
  if (busy_ || q_.empty()) return;
  busy_ = true;
  SdmaRequest r = q_.pop();

  std::size_t total = 0;
  for (const auto& seg : r.segs) total += seg.bytes.size();
  const sim::Duration t = cfg_.setup + sim::transfer_time(
                                           static_cast<std::int64_t>(total),
                                           cfg_.bandwidth_bps);
  stats_.busy_time += t;

  auto shared = std::make_shared<SdmaRequest>(std::move(r));
  sim_.after(t, [this, shared] {
    execute(*shared);
    busy_ = false;
    if (shared->on_complete) shared->on_complete(*shared);
    kick();
  });
}

void SdmaEngine::execute(SdmaRequest& r) {
  ++stats_.requests;
  std::size_t total = 0;
  for (const auto& seg : r.segs) total += seg.bytes.size();

  if (r.dir == SdmaRequest::Dir::kToCab) {
    stats_.bytes_to_cab += total;
    auto dst = nm_.bytes(r.handle, r.cab_off, total);
    std::size_t pos = 0;
    for (const auto& seg : r.segs) {
      std::memcpy(dst.data() + pos, seg.bytes.data(), seg.bytes.size());
      pos += seg.bytes.size();
    }
    if (r.csum_enable && r.body_sum_only) {
      // Staging: the packet body flows outboard before its headers exist;
      // save its checksum for the header SDMA that follows (§4.3).
      nm_.set_body_sum(r.handle, csum_.sum_from(dst, r.skip_words));
      return;
    }
    if (r.csum_enable) {
      // The request stream begins at cab_off == 0 for checksummed packets
      // (a fully-formed packet, §2.2), so skip_words counts from the start
      // of the transfer.
      std::uint32_t body;
      if (r.header_rewrite) {
        auto saved = nm_.body_sum(r.handle);
        if (!saved)
          throw std::logic_error("SdmaEngine: header rewrite without saved body sum");
        body = *saved;
      } else {
        body = csum_.sum_from(dst, r.skip_words);
        nm_.set_body_sum(r.handle, body);
      }
      auto field = nm_.bytes(r.handle, r.csum_offset, 2);
      const std::uint16_t seed = wire::load_be16(field.data());
      wire::store_be16(field.data(), ChecksumEngine::finish_with_seed(seed, body));
    }
  } else {
    stats_.bytes_from_cab += total;
    auto src = nm_.bytes(r.handle, r.cab_off, total);
    std::size_t pos = 0;
    for (const auto& seg : r.segs) {
      std::memcpy(seg.bytes.data(), src.data() + pos, seg.bytes.size());
      pos += seg.bytes.size();
    }
  }
}

}  // namespace nectar::cab
