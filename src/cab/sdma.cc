#include "cab/sdma.h"

#include <cstring>
#include <stdexcept>

#include "checksum/wire.h"
#include "telemetry/telemetry.h"

namespace nectar::cab {

void SdmaEngine::set_telemetry(telemetry::Telemetry* tel, int pid) {
  tel_ = tel;
  tel_pid_ = pid;
  tel_ns_ = tel ? tel->alloc_key_namespace() : 0;
}

bool SdmaEngine::post(SdmaRequest r) {
  if (queue_space() == 0) return false;
  for (const auto& seg : r.segs) {
    if (seg.vaddr % 4 != 0)
      throw std::logic_error(
          "SdmaEngine: misaligned host address (driver must use the copy path)");
    if (seg.bytes.empty())
      throw std::logic_error("SdmaEngine: empty segment");
  }
  r.id = next_id_++;
  if (tel_ != nullptr)
    tel_->span_begin(telemetry::Stage::kSdmaQueue, tel_pid_, tkey(r.id), r.flow);
  q_.push(std::move(r));
  kick();
  return true;
}

void SdmaEngine::kick() {
  if (busy_ || stalled_ || q_.empty()) return;
  busy_ = true;
  SdmaRequest r = q_.pop();
  if (tel_ != nullptr) {
    tel_->span_end(telemetry::Stage::kSdmaQueue, tkey(r.id));
    tel_->span_begin(telemetry::Stage::kSdmaXfer, tel_pid_, tkey(r.id), r.flow);
  }

  std::size_t total = 0;
  for (const auto& seg : r.segs) total += seg.bytes.size();
  const sim::Duration t = cfg_.setup + sim::transfer_time(
                                           static_cast<std::int64_t>(total),
                                           cfg_.bandwidth_bps);
  stats_.busy_time += t;

  auto shared = std::make_shared<SdmaRequest>(std::move(r));
  const std::uint64_t epoch = epoch_;
  sim_.after(t, [this, shared, epoch] {
    if (epoch != epoch_) {
      // abort_all ran while this transfer was on the bus: the engine has been
      // reinitialized, so report failure and leave busy_/queue state alone —
      // abort_all already reset them.
      shared->failed = true;
      ++stats_.requests;
      ++stats_.aborted;
      if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kSdmaXfer, tkey(shared->id));
      if (shared->on_complete) shared->on_complete(*shared);
      return;
    }
    execute(*shared);
    busy_ = false;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kSdmaXfer, tkey(shared->id));
    if (shared->on_complete) shared->on_complete(*shared);
    kick();
  });
}

void SdmaEngine::abort_all() {
  ++epoch_;  // disowns the in-flight transfer, if any
  busy_ = false;
  // Drain first: a failure callback may post a fresh request, which belongs
  // to the new epoch and must not be swept up in this abort.
  std::vector<SdmaRequest> dropped;
  while (!q_.empty()) dropped.push_back(q_.pop());
  for (auto& r : dropped) {
    r.failed = true;
    ++stats_.requests;
    ++stats_.aborted;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kSdmaQueue, tkey(r.id));
    if (r.on_complete) r.on_complete(r);
  }
}

void SdmaEngine::execute(SdmaRequest& r) {
  ++stats_.requests;
  if (inject_errors_ > 0) {
    --inject_errors_;
    r.failed = true;
    ++stats_.errors;
    return;
  }
  // A failed checksum unit aborts (parity check) any transfer that needs a
  // fresh body sum; header rewrites only use the combine adder and proceed.
  if (r.csum_enable && !r.header_rewrite && csum_.failed()) {
    r.failed = true;
    ++stats_.errors;
    return;
  }
  std::size_t total = 0;
  for (const auto& seg : r.segs) total += seg.bytes.size();

  if (r.dir == SdmaRequest::Dir::kToCab) {
    stats_.bytes_to_cab += total;
    auto dst = nm_.bytes(r.handle, r.cab_off, total);
    std::size_t pos = 0;
    for (const auto& seg : r.segs) {
      std::memcpy(dst.data() + pos, seg.bytes.data(), seg.bytes.size());
      pos += seg.bytes.size();
    }
    if (r.csum_enable && r.body_sum_only) {
      // Staging: the packet body flows outboard before its headers exist;
      // save its checksum for the header SDMA that follows (§4.3). For
      // large-segment staging also save one sum per stride-size slice so the
      // MDMA fan-out can checksum each wire segment — same bytes through the
      // summation unit either way, just checkpointed at slice boundaries.
      if (r.seg_stride > 0) {
        std::vector<std::uint32_t> sums;
        std::uint32_t body = 0;
        std::size_t off = 0;
        while (off < dst.size()) {
          const std::size_t n = std::min<std::size_t>(r.seg_stride, dst.size() - off);
          const std::uint32_t s = csum_.sum_from(dst.subspan(off, n), 0);
          body = checksum::combine(body, s, off);
          sums.push_back(s);
          off += n;
        }
        nm_.set_seg_sums(r.handle, r.cab_off, r.seg_stride, dst.size(), std::move(sums));
        nm_.set_body_sum(r.handle, body);
      } else {
        nm_.set_body_sum(r.handle, csum_.sum_from(dst, r.skip_words));
      }
      return;
    }
    if (r.csum_enable) {
      // The request stream begins at cab_off == 0 for a fully-formed packet
      // (§2.2), so skip_words counts from the start of the transfer. A
      // header rewrite may land mid-buffer (cab_off > 0): a tail
      // retransmission of a partially-acknowledged super-segment, whose body
      // sum comes from the saved slice sums rather than the whole-packet sum.
      std::uint32_t body;
      if (r.header_rewrite) {
        if (r.cab_off == 0) {
          auto saved = nm_.body_sum(r.handle);
          if (!saved)
            throw std::logic_error("SdmaEngine: header rewrite without saved body sum");
          body = *saved;
        } else {
          const std::size_t payload_at = r.cab_off + total;
          auto tail = nm_.tail_sum(r.handle, payload_at);
          if (tail) {
            body = *tail;
          } else if (!csum_.failed()) {
            body = csum_.sum_from(
                nm_.bytes(r.handle, payload_at, nm_.packet_len(r.handle) - payload_at),
                0);
          } else {
            // No saved slice covers this tail and the summation unit is down:
            // parity abort, the driver re-posts after recovery.
            r.failed = true;
            ++stats_.errors;
            return;
          }
        }
      } else {
        body = csum_.sum_from(dst, r.skip_words);
        nm_.set_body_sum(r.handle, body);
      }
      auto field = nm_.bytes(r.handle, r.cab_off + r.csum_offset, 2);
      const std::uint16_t seed = wire::load_be16(field.data());
      wire::store_be16(field.data(), ChecksumEngine::finish_with_seed(seed, body));
    }
  } else {
    stats_.bytes_from_cab += total;
    auto src = nm_.bytes(r.handle, r.cab_off, total);
    std::size_t pos = 0;
    for (const auto& seg : r.segs) {
      std::memcpy(seg.bytes.data(), src.data() + pos, seg.bytes.size());
      pos += seg.bytes.size();
    }
  }
}

}  // namespace nectar::cab
