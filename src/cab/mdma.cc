#include "cab/mdma.h"

#include <cstring>
#include <memory>

#include "telemetry/telemetry.h"

namespace nectar::cab {

void MdmaXmit::set_telemetry(telemetry::Telemetry* tel, int pid) {
  tel_ = tel;
  tel_pid_ = pid;
  tel_ns_ = tel ? tel->alloc_key_namespace() : 0;
}

void MdmaXmit::post(Request r) {
  r.id = next_id_++;
  if (tel_ != nullptr)
    tel_->span_begin(telemetry::Stage::kMdmaQueue, tel_pid_, tkey(r.id), r.flow);
  q_.push(std::move(r));
  kick();
}

void MdmaXmit::kick() {
  if (busy_ || stalled_ || q_.empty()) return;
  busy_ = true;
  Request r = q_.pop();
  if (tel_ != nullptr) {
    tel_->span_end(telemetry::Stage::kMdmaQueue, tkey(r.id));
    tel_->span_begin(telemetry::Stage::kMdmaXfer, tel_pid_, tkey(r.id), r.flow);
  }

  const sim::Duration t =
      cfg_.setup +
      sim::transfer_time(static_cast<std::int64_t>(r.len), cfg_.line_rate_bps);
  stats_.busy_time += t;

  const bool fail = inject_errors_ > 0;
  if (fail) --inject_errors_;

  // Snapshot the bytes at transmit time (a retransmission may rewrite the
  // header while an earlier copy is still "on the wire").
  auto pkt = std::make_shared<hippi::Packet>();
  auto src = nm_.bytes(r.handle, 0, r.len);
  pkt->bytes.assign(src.begin(), src.end());

  auto done = std::make_shared<std::function<void()>>(std::move(r.on_complete));
  const std::uint64_t epoch = epoch_;
  const std::uint64_t rid = r.id;
  sim_.after(t, [this, pkt, done, fail, epoch, rid] {
    if (epoch != epoch_) {
      // Aborted mid-serialization by a reset: the frame is cut short on the
      // wire. Unwind references; abort_all already reset engine state.
      ++stats_.aborted;
      if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kMdmaXfer, tkey(rid));
      if (*done) (*done)();
      return;
    }
    if (fail) {
      ++stats_.errors;
    } else {
      ++stats_.packets;
      stats_.bytes += pkt->size();
      fabric_->submit(std::move(*pkt));
    }
    busy_ = false;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kMdmaXfer, tkey(rid));
    if (*done) (*done)();
    kick();
  });
}

void MdmaXmit::abort_all() {
  ++epoch_;
  busy_ = false;
  std::vector<Request> dropped;
  while (!q_.empty()) dropped.push_back(q_.pop());
  for (auto& r : dropped) {
    ++stats_.aborted;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kMdmaQueue, tkey(r.id));
    if (r.on_complete) r.on_complete();
  }
}

void MdmaRecv::set_telemetry(telemetry::Telemetry* tel, int pid) {
  tel_ = tel;
  tel_pid_ = pid;
  tel_ns_ = tel ? tel->alloc_key_namespace() : 0;
}

void MdmaRecv::hippi_receive(hippi::Packet&& p) {
  if (stalled_) {
    ++stats_.drops_stalled;
    return;
  }
  const std::size_t len = p.bytes.size();
  auto h = nm_.alloc(len);
  if (!h) {
    ++stats_.drops_no_memory;
    return;
  }
  ++stats_.packets;
  stats_.bytes += len;
  std::uint64_t span_key = 0;
  if (tel_ != nullptr) {
    span_key = tel_ns_ | (++tel_seq_ & ((1ull << 40) - 1));
    tel_->span_begin(telemetry::Stage::kRecvDma, tel_pid_, span_key);
  }

  // Data lands in network memory as it comes off the media; the checksum is
  // computed during that transfer (so it is available with the packet).
  auto dst = nm_.bytes(*h, 0, len);
  std::memcpy(dst.data(), p.bytes.data(), len);
  const std::uint32_t hw_sum = sdma_.checksum().sum_from(dst, rx_skip_words_);

  const std::size_t head_len = std::min<std::size_t>(autodma_bytes(), len);
  const bool fits = head_len == len;
  if (fits) ++stats_.fully_autodma;

  // Auto-DMA the first L words to the host through the shared SDMA engine
  // (all host<->CAB traffic shares the TURBOchannel).
  auto desc = std::make_shared<RecvDesc>();
  desc->total_len = len;
  desc->hw_sum = hw_sum;
  desc->head.resize(head_len);
  desc->handle = fits ? std::nullopt : std::optional<Handle>(*h);

  SdmaRequest req;
  req.dir = SdmaRequest::Dir::kFromCab;
  req.handle = *h;
  req.cab_off = 0;
  req.segs.push_back(SdmaSeg{0, std::span<std::byte>(desc->head)});
  req.interrupt_on_done = true;
  const Handle handle = *h;
  const bool release_after = fits;
  req.on_complete = [this, desc, handle, release_after,
                     span_key](const SdmaRequest& done) {
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kRecvDma, span_key);
    if (done.failed) {
      // The head never reached host memory; the host is never notified, so
      // the packet is lost end-to-end. Release the outboard buffer in both
      // cases — a residual handle with no descriptor would leak forever.
      ++stats_.drops_autodma_failed;
      nm_.release(handle);
      return;
    }
    if (release_after) nm_.release(handle);
    if (deliver_) deliver_(std::move(*desc));
  };
  // Auto-DMA must not fail: the engine queue is sized for it, but if the
  // host has wedged the queue, drop the packet (as real hardware would).
  if (!sdma_.post(std::move(req))) {
    ++stats_.drops_no_memory;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kRecvDma, span_key);
    nm_.release(*h);
  }
}

}  // namespace nectar::cab
