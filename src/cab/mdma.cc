#include "cab/mdma.h"

#include <cstring>
#include <memory>
#include <stdexcept>

#include "checksum/wire.h"
#include "telemetry/telemetry.h"

namespace nectar::cab {

void MdmaXmit::set_telemetry(telemetry::Telemetry* tel, int pid) {
  tel_ = tel;
  tel_pid_ = pid;
  tel_ns_ = tel ? tel->alloc_key_namespace() : 0;
}

void MdmaXmit::post(Request r) {
  r.id = next_id_++;
  if (tel_ != nullptr)
    tel_->span_begin(telemetry::Stage::kMdmaQueue, tel_pid_, tkey(r.id), r.flow);
  q_.push(std::move(r));
  kick();
}

void MdmaXmit::kick() {
  if (busy_ || stalled_ || q_.empty()) return;
  busy_ = true;
  Request r = q_.pop();
  if (tel_ != nullptr) {
    tel_->span_end(telemetry::Stage::kMdmaQueue, tkey(r.id));
    tel_->span_begin(telemetry::Stage::kMdmaXfer, tel_pid_, tkey(r.id), r.flow);
  }

  if (r.tso_seg_payload > 0 && r.len > r.tso_hdr_len &&
      r.len - r.tso_hdr_len > r.tso_seg_payload) {
    kick_tso(std::move(r));
    return;
  }

  const sim::Duration t =
      cfg_.setup +
      sim::transfer_time(static_cast<std::int64_t>(r.len), cfg_.line_rate_bps);
  stats_.busy_time += t;

  const bool fail = inject_errors_ > 0;
  if (fail) --inject_errors_;

  // Snapshot the bytes at transmit time (a retransmission may rewrite the
  // header while an earlier copy is still "on the wire").
  auto pkt = std::make_shared<hippi::Packet>();
  auto src = nm_.bytes(r.handle, r.off, r.len);
  pkt->bytes.assign(src.begin(), src.end());

  auto done = std::make_shared<std::function<void()>>(std::move(r.on_complete));
  const std::uint64_t epoch = epoch_;
  const std::uint64_t rid = r.id;
  sim_.after(t, [this, pkt, done, fail, epoch, rid] {
    if (epoch != epoch_) {
      // Aborted mid-serialization by a reset: the frame is cut short on the
      // wire. Unwind references; abort_all already reset engine state.
      ++stats_.aborted;
      if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kMdmaXfer, tkey(rid));
      if (*done) (*done)();
      return;
    }
    if (fail) {
      ++stats_.errors;
    } else {
      ++stats_.packets;
      stats_.bytes += pkt->size();
      fabric_->submit(std::move(*pkt));
    }
    busy_ = false;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kMdmaXfer, tkey(rid));
    if (*done) (*done)();
    kick();
  });
}

// Large-segment fan-out. The host posted one multi-MTU packet; the engine
// cuts its payload into wire segments, replicating the header block per
// segment with length/sequence fixups and per-segment checksums built from
// the slice sums the SDMA saved at staging time (ChecksumEngine::combine
// machinery — no second pass over the data). The whole burst costs one
// engine setup: that amortization, not the media time, is the offload win.
void MdmaXmit::kick_tso(Request r) {
  const std::size_t hl = r.tso_hdr_len;
  const std::size_t seg_payload = r.tso_seg_payload;
  const std::size_t payload = r.len - hl;
  const std::size_t nsegs = (payload + seg_payload - 1) / seg_payload;
  const std::size_t ip_off = hippi::kHeaderSize;
  const std::size_t tcp_off = ip_off + 20;
  if (hl < tcp_off + 20)
    throw std::logic_error("MdmaXmit: TSO header block too short");
  const std::size_t thl = hl - tcp_off;  // transport header length

  ++stats_.tso_requests;
  if (tel_ != nullptr)
    tel_->span_begin(telemetry::Stage::kTsoFanout, tel_pid_, tkey(r.id), r.flow);

  // Snapshot the super-segment once (same rule as the single-packet path).
  auto src = nm_.bytes(r.handle, r.off, r.len);

  // Pseudo-header template from the replicated IP header.
  checksum::PseudoHeader ph;
  ph.src = wire::load_be32(src.data() + ip_off + 12);
  ph.dst = wire::load_be32(src.data() + ip_off + 16);
  ph.proto = std::to_integer<std::uint8_t>(src[ip_off + 9]);
  const std::uint32_t base_seq = wire::load_be32(src.data() + tcp_off + 4);
  const std::byte tmpl_flags = src[tcp_off + 13];

  auto done = std::make_shared<std::function<void()>>(std::move(r.on_complete));
  const std::uint64_t epoch = epoch_;
  const std::uint64_t rid = r.id;
  std::size_t cum_bytes = 0;
  for (std::size_t i = 0; i < nsegs; ++i) {
    const std::size_t slice = std::min(seg_payload, payload - i * seg_payload);
    const bool last = i + 1 == nsegs;
    const std::size_t ip_total = 20 + thl + slice;

    auto pkt = std::make_shared<hippi::Packet>();
    pkt->bytes.resize(hl + slice);
    std::byte* b = pkt->bytes.data();
    std::memcpy(b, src.data(), hl);
    std::memcpy(b + hl, src.data() + hl + i * seg_payload, slice);

    // Link: the HIPPI length word tracks the IP datagram it carries.
    wire::store_be32(b + 12, static_cast<std::uint32_t>(ip_total));
    // IP: per-segment total length, fresh header checksum.
    wire::store_be16(b + ip_off + 2, static_cast<std::uint16_t>(ip_total));
    wire::store_be16(b + ip_off + 10, 0);
    wire::store_be16(b + ip_off + 10,
                     checksum::finish(checksum::ones_sum(
                         std::span<const std::byte>(b + ip_off, 20))));
    // TCP: advance the sequence number, carry FIN/PSH only on the last
    // segment, recompute the checksum from pseudo + header + saved slice sum.
    wire::store_be32(b + tcp_off + 4,
                     base_seq + static_cast<std::uint32_t>(i * seg_payload));
    if (!last) b[tcp_off + 13] = tmpl_flags & std::byte{0xf6};  // ~(FIN|PSH)
    wire::store_be16(b + tcp_off + 16, 0);
    ph.length = static_cast<std::uint16_t>(thl + slice);
    const std::span<const std::byte> th(b + tcp_off, thl);
    std::uint32_t sum = checksum::pseudo_sum(ph);
    sum += csum_ != nullptr ? csum_->header_sum(th) : checksum::ones_sum(th);
    std::uint32_t body;
    if (auto saved = nm_.seg_slice_sum(r.handle, r.off + hl + i * seg_payload, slice)) {
      body = *saved;
    } else {
      const std::span<const std::byte> bs(b + hl, slice);
      // No saved slice sum: a fresh pass through the summation unit (which,
      // when failed, yields a deterministically bad checksum — the receiver
      // drops the segment and the transport retries after recovery).
      body = csum_ != nullptr ? csum_->sum_from(bs, 0) : checksum::ones_sum(bs);
    }
    sum = checksum::combine(sum, body, thl);
    wire::store_be16(b + tcp_off + 16, checksum::finish(sum));

    const bool fail = inject_errors_ > 0;  // per wire segment, like the wire
    if (fail) --inject_errors_;
    cum_bytes += hl + slice;
    const sim::Duration at =
        cfg_.setup + sim::transfer_time(static_cast<std::int64_t>(cum_bytes),
                                        cfg_.line_rate_bps);
    if (last) stats_.busy_time += at;
    sim_.after(at, [this, pkt, done, fail, epoch, rid, last] {
      if (epoch != epoch_) {
        if (last) {
          ++stats_.aborted;
          if (tel_ != nullptr) {
            tel_->span_end(telemetry::Stage::kTsoFanout, tkey(rid));
            tel_->span_end(telemetry::Stage::kMdmaXfer, tkey(rid));
          }
          if (*done) (*done)();
        }
        return;
      }
      if (fail) {
        ++stats_.errors;
      } else {
        ++stats_.packets;
        ++stats_.tso_wire_segs;
        stats_.bytes += pkt->size();
        fabric_->submit(std::move(*pkt));
      }
      if (last) {
        busy_ = false;
        if (tel_ != nullptr) {
          tel_->span_end(telemetry::Stage::kTsoFanout, tkey(rid));
          tel_->span_end(telemetry::Stage::kMdmaXfer, tkey(rid));
        }
        if (*done) (*done)();
        kick();
      }
    });
  }
}

void MdmaXmit::abort_all() {
  ++epoch_;
  busy_ = false;
  std::vector<Request> dropped;
  while (!q_.empty()) dropped.push_back(q_.pop());
  for (auto& r : dropped) {
    ++stats_.aborted;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kMdmaQueue, tkey(r.id));
    if (r.on_complete) r.on_complete();
  }
}

void MdmaRecv::set_telemetry(telemetry::Telemetry* tel, int pid) {
  tel_ = tel;
  tel_pid_ = pid;
  tel_ns_ = tel ? tel->alloc_key_namespace() : 0;
}

void MdmaRecv::hippi_receive(hippi::Packet&& p) {
  if (stalled_) {
    ++stats_.drops_stalled;
    return;
  }
  const std::size_t len = p.bytes.size();
  auto h = nm_.alloc(len);
  if (!h) {
    ++stats_.drops_no_memory;
    return;
  }
  ++stats_.packets;
  stats_.bytes += len;
  std::uint64_t span_key = 0;
  if (tel_ != nullptr) {
    span_key = tel_ns_ | (++tel_seq_ & ((1ull << 40) - 1));
    tel_->span_begin(telemetry::Stage::kRecvDma, tel_pid_, span_key);
  }

  // Data lands in network memory as it comes off the media; the checksum is
  // computed during that transfer (so it is available with the packet).
  auto dst = nm_.bytes(*h, 0, len);
  std::memcpy(dst.data(), p.bytes.data(), len);
  const std::uint32_t hw_sum = sdma_.checksum().sum_from(dst, rx_skip_words_);

  const std::size_t head_len = std::min<std::size_t>(autodma_bytes(), len);
  const bool fits = head_len == len;
  if (fits) ++stats_.fully_autodma;

  // Auto-DMA the first L words to the host through the shared SDMA engine
  // (all host<->CAB traffic shares the TURBOchannel).
  auto desc = std::make_shared<RecvDesc>();
  desc->total_len = len;
  desc->hw_sum = hw_sum;
  desc->head.resize(head_len);
  desc->handle = fits ? std::nullopt : std::optional<Handle>(*h);

  SdmaRequest req;
  req.dir = SdmaRequest::Dir::kFromCab;
  req.handle = *h;
  req.cab_off = 0;
  req.segs.push_back(SdmaSeg{0, std::span<std::byte>(desc->head)});
  req.interrupt_on_done = true;
  const Handle handle = *h;
  const bool release_after = fits;
  req.on_complete = [this, desc, handle, release_after,
                     span_key](const SdmaRequest& done) {
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kRecvDma, span_key);
    if (done.failed) {
      // The head never reached host memory; the host is never notified, so
      // the packet is lost end-to-end. Release the outboard buffer in both
      // cases — a residual handle with no descriptor would leak forever.
      ++stats_.drops_autodma_failed;
      nm_.release(handle);
      return;
    }
    if (release_after) nm_.release(handle);
    if (deliver_) deliver_(std::move(*desc));
  };
  // Auto-DMA must not fail: the engine queue is sized for it, but if the
  // host has wedged the queue, drop the packet (as real hardware would).
  if (!sdma_.post(std::move(req))) {
    ++stats_.drops_no_memory;
    if (tel_ != nullptr) tel_->span_end(telemetry::Stage::kRecvDma, span_key);
    nm_.release(*h);
  }
}

}  // namespace nectar::cab
