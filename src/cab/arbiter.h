// ArbQueue: the CAB's DMA request arbiter.
//
// The SDMA engine and the MDMA transmit engine are single resources that
// every connection on the host shares (§2.1: one TURBOchannel, one media
// transmitter). With one flow a plain FIFO is the hardware's command queue;
// with many flows the service discipline decides who makes progress. Three
// policies:
//
//  * kFifo — strict arrival order, the seed behaviour. One bulk flow that
//    keeps the queue full starves nobody outright (the queue is bounded and
//    the driver backs off), but bursts serialize behind each other.
//  * kRoundRobin — one request per flow per turn, in flow-id order. A flow
//    that posts many requests waits for every other backlogged flow between
//    its own; this is what keeps the Jain index high at 64+ flows.
//  * kWeightedFair — credit-based weighted round robin. Each flow carries an
//    integer weight (default 1, set_flow_weight); between credit recharges a
//    continuously-backlogged flow is served exactly `weight` times, so over
//    any window in which a set of flows stays backlogged the service shares
//    match the weight ratios to within one recharge round (max weight
//    requests) — the provable bound the property test asserts. Flows whose
//    queue drains forfeit their remaining credit (DRR-style), so a flow
//    cannot bank service by oscillating between idle and backlogged.
//
// All policies are deterministic: ties break by arrival order (kFifo) or
// flow id (kRoundRobin/kWeightedFair); nothing consults wall-clock or
// hashes.
//
// R must expose a `std::uint32_t flow` member (0 = unattributed; flow 0 is
// just another queue, so control traffic is arbitrated too).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string_view>

namespace nectar::cab {

enum class ArbPolicy { kFifo, kRoundRobin, kWeightedFair };

// The single name<->enum map. Every config string and every stats dump goes
// through these two functions, so a typo'd policy name is a hard error at
// the parse site instead of a silent fifo fallback.
inline constexpr struct {
  ArbPolicy policy;
  const char* name;
} kArbPolicyNames[] = {
    {ArbPolicy::kFifo, "fifo"},
    {ArbPolicy::kRoundRobin, "round_robin"},
    {ArbPolicy::kWeightedFair, "weighted_fair"},
};

[[nodiscard]] constexpr const char* arb_policy_name(ArbPolicy p) noexcept {
  for (const auto& e : kArbPolicyNames) {
    if (e.policy == p) return e.name;
  }
  return "fifo";  // unreachable for in-range enum values
}

[[nodiscard]] constexpr std::optional<ArbPolicy> arb_policy_from_name(
    std::string_view name) noexcept {
  for (const auto& e : kArbPolicyNames) {
    if (name == e.name) return e.policy;
  }
  return std::nullopt;
}

template <typename R>
class ArbQueue {
 public:
  explicit ArbQueue(ArbPolicy p = ArbPolicy::kFifo) : policy_(p) {}

  void set_policy(ArbPolicy p) noexcept { policy_ = p; }
  [[nodiscard]] ArbPolicy policy() const noexcept { return policy_; }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  // Flows with at least one queued request right now.
  [[nodiscard]] std::size_t flows_queued() const noexcept { return flows_.size(); }

  void push(R r) {
    const std::uint32_t flow = r.flow;
    auto& fq = flows_[flow];
    fq.push_back(Item{next_seq_++, std::move(r)});
    ++size_;
    ++stats_.pushes;
    stats_.max_depth = std::max(stats_.max_depth, size_);
    stats_.max_flows = std::max<std::uint64_t>(stats_.max_flows, flows_.size());
    FlowStats& fs = flow_stats_[flow];
    ++fs.pushes;
    fs.max_depth = std::max<std::uint64_t>(fs.max_depth, fq.size());
  }

  // Remove and return the next request under the current policy. Precondition:
  // !empty().
  R pop() {
    typename FlowMap::iterator it;
    switch (policy_) {
      case ArbPolicy::kRoundRobin: it = pick_round_robin(); break;
      case ArbPolicy::kWeightedFair: it = pick_weighted(); break;
      default: it = pick_fifo(); break;
    }
    R r = std::move(it->second.front().req);
    it->second.pop_front();
    last_flow_ = it->first;
    ++flow_stats_[it->first].pops;
    if (it->second.empty()) {
      credits_.erase(it->first);  // drained flows forfeit residual credit
      flows_.erase(it);
    }
    --size_;
    ++stats_.pops;
    return r;
  }

  // Weighted-fair class weight for `flow` (>= 1; requests beyond the weight
  // wait for the next credit recharge). Ignored by kFifo/kRoundRobin.
  void set_flow_weight(std::uint32_t flow, std::uint32_t weight) {
    weights_[flow] = std::max<std::uint32_t>(weight, 1);
  }
  [[nodiscard]] std::uint32_t flow_weight(std::uint32_t flow) const noexcept {
    auto it = weights_.find(flow);
    return it == weights_.end() ? 1 : it->second;
  }

  struct Stats {
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t max_depth = 0;  // high-water of queued requests
    std::uint64_t max_flows = 0;  // high-water of flows queued at once
    std::uint64_t credit_recharges = 0;  // kWeightedFair rounds completed
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // Per-flow service accounting, keyed by flow id (deterministic order).
  // Entries persist after a flow drains so post-run stats cover every flow
  // that ever queued here.
  struct FlowStats {
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t max_depth = 0;  // high-water of this flow's own queue
  };
  [[nodiscard]] const std::map<std::uint32_t, FlowStats>& flow_stats() const noexcept {
    return flow_stats_;
  }
  // Requests of `flow` queued right now.
  [[nodiscard]] std::size_t flow_depth(std::uint32_t flow) const noexcept {
    auto it = flows_.find(flow);
    return it == flows_.end() ? 0 : it->second.size();
  }

 private:
  struct Item {
    std::uint64_t seq;  // global arrival order
    R req;
  };
  using FlowMap = std::map<std::uint32_t, std::deque<Item>>;

  // Oldest request overall. O(flows queued); the command queue is bounded
  // (depth 64), so this stays trivially small.
  typename FlowMap::iterator pick_fifo() {
    auto best = flows_.begin();
    for (auto it = std::next(flows_.begin()); it != flows_.end(); ++it) {
      if (it->second.front().seq < best->second.front().seq) best = it;
    }
    return best;
  }

  // Next backlogged flow after the last one served, wrapping in flow-id order.
  typename FlowMap::iterator pick_round_robin() {
    auto it = flows_.upper_bound(last_flow_);
    if (it == flows_.end()) it = flows_.begin();
    return it;
  }

  // Credit-based weighted round robin. Serve the first backlogged flow after
  // the last one served (wrapping, flow-id order) that still holds credit;
  // when every backlogged flow's credit is spent, recharge each to its
  // weight and take the next flow in rotation. A flow that joins mid-round
  // starts at zero credit and waits for the recharge, so arrival timing
  // cannot buy extra service.
  typename FlowMap::iterator pick_weighted() {
    for (int pass = 0; pass < 2; ++pass) {
      auto it = flows_.upper_bound(last_flow_);
      for (std::size_t n = 0; n < flows_.size(); ++n) {
        if (it == flows_.end()) it = flows_.begin();
        auto c = credits_.find(it->first);
        if (c != credits_.end() && c->second > 0) {
          --c->second;
          return it;
        }
        ++it;
      }
      // All backlogged flows are out of credit: recharge and rescan.
      for (const auto& [flow, q] : flows_) credits_[flow] = flow_weight(flow);
      ++stats_.credit_recharges;
    }
    return flows_.begin();  // unreachable: recharge gives every flow credit
  }

  ArbPolicy policy_;
  FlowMap flows_;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint32_t last_flow_ = 0;
  Stats stats_;
  std::map<std::uint32_t, FlowStats> flow_stats_;
  std::map<std::uint32_t, std::uint32_t> weights_;  // absent = weight 1
  std::map<std::uint32_t, std::uint64_t> credits_;  // backlogged flows only
};

}  // namespace nectar::cab
