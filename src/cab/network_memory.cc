#include "cab/network_memory.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "checksum/internet_checksum.h"
#include "telemetry/telemetry.h"

namespace nectar::cab {

void NetworkMemory::set_telemetry(telemetry::Telemetry* tel, int pid) {
  tel_ = tel;
  tel_pid_ = pid;
  tel_ns_ = tel ? tel->alloc_key_namespace() : 0;
}

NetworkMemory::NetworkMemory(std::size_t bytes, std::size_t page_size)
    : page_size_(page_size),
      store_(bytes),
      page_used_(bytes / page_size, false),
      free_pages_(bytes / page_size) {
  if (page_size == 0 || bytes % page_size != 0)
    throw std::invalid_argument("NetworkMemory: size must be a multiple of page size");
}

std::optional<Handle> NetworkMemory::alloc(std::size_t len) {
  if (len == 0) throw std::invalid_argument("NetworkMemory::alloc: zero length");
  const std::size_t npages = (len + page_size_ - 1) / page_size_;
  const std::size_t total = page_used_.size();
  if (force_exhausted_ || npages > free_pages_) {
    ++alloc_failures_;
    return std::nullopt;
  }
  // Rotating first-fit over the page bitmap for a contiguous run.
  for (std::size_t attempt = 0; attempt < total; ++attempt) {
    const std::size_t start = (next_fit_ + attempt) % total;
    if (start + npages > total) continue;
    bool ok = true;
    for (std::size_t i = 0; i < npages; ++i) {
      if (page_used_[start + i]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (std::size_t i = 0; i < npages; ++i) page_used_[start + i] = true;
    free_pages_ -= npages;
    next_fit_ = (start + npages) % total;

    Handle h;
    if (!free_slots_.empty()) {
      h = free_slots_.back();
      free_slots_.pop_back();
    } else {
      h = static_cast<Handle>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[h];
    s = Slot{};
    s.first_page = start;
    s.npages = npages;
    s.len = len;
    s.refs = 1;
    s.live = true;
    if (tel_ != nullptr) {
      s.tel_key = tel_ns_ | (++tel_seq_ & ((1ull << 40) - 1));
      tel_->span_begin(telemetry::Stage::kOutboard, tel_pid_, s.tel_key);
    }
    ++live_;
    max_used_pages_ = std::max(max_used_pages_, page_used_.size() - free_pages_);
    max_live_ = std::max(max_live_, live_);
    return h;
  }
  ++alloc_failures_;  // fragmentation: enough pages but no contiguous run
  return std::nullopt;
}

const NetworkMemory::Slot& NetworkMemory::slot(Handle h) const {
  if (h >= slots_.size() || !slots_[h].live)
    throw std::out_of_range("NetworkMemory: dead handle");
  return slots_[h];
}

NetworkMemory::Slot& NetworkMemory::slot(Handle h) {
  return const_cast<Slot&>(static_cast<const NetworkMemory*>(this)->slot(h));
}

void NetworkMemory::retain(Handle h) { ++slot(h).refs; }

void NetworkMemory::release(Handle h) {
  Slot& s = slot(h);
  assert(s.refs > 0);
  if (--s.refs > 0) return;
  for (std::size_t i = 0; i < s.npages; ++i) page_used_[s.first_page + i] = false;
  free_pages_ += s.npages;
  s.live = false;
  if (tel_ != nullptr && s.tel_key != 0)
    tel_->span_end(telemetry::Stage::kOutboard, s.tel_key);
  --live_;
  free_slots_.push_back(h);
}

std::span<std::byte> NetworkMemory::bytes(Handle h, std::size_t off, std::size_t len) {
  Slot& s = slot(h);
  if (off + len > s.npages * page_size_)
    throw std::out_of_range("NetworkMemory::bytes: beyond packet buffer");
  return {store_.data() + s.first_page * page_size_ + off, len};
}

std::span<const std::byte> NetworkMemory::bytes(Handle h, std::size_t off,
                                                std::size_t len) const {
  const Slot& s = slot(h);
  if (off + len > s.npages * page_size_)
    throw std::out_of_range("NetworkMemory::bytes: beyond packet buffer");
  return {store_.data() + s.first_page * page_size_ + off, len};
}

std::size_t NetworkMemory::leak_pages(std::size_t npages) {
  std::size_t taken = 0;
  for (std::size_t p = 0; p < page_used_.size() && taken < npages; ++p) {
    if (page_used_[p]) continue;
    page_used_[p] = true;
    --free_pages_;
    leaked_.push_back(p);
    ++taken;
  }
  max_used_pages_ = std::max(max_used_pages_, page_used_.size() - free_pages_);
  return taken;
}

std::size_t NetworkMemory::reclaim_leaked() {
  const std::size_t n = leaked_.size();
  for (const std::size_t p : leaked_) {
    page_used_[p] = false;
    ++free_pages_;
  }
  leaked_.clear();
  return n;
}

std::size_t NetworkMemory::packet_len(Handle h) const { return slot(h).len; }
int NetworkMemory::refcount(Handle h) const { return slot(h).refs; }

void NetworkMemory::set_body_sum(Handle h, std::uint32_t sum) { slot(h).body_sum = sum; }
std::optional<std::uint32_t> NetworkMemory::body_sum(Handle h) const {
  return slot(h).body_sum;
}

void NetworkMemory::set_seg_sums(Handle h, std::size_t base, std::size_t stride,
                                 std::size_t len, std::vector<std::uint32_t> sums) {
  if (stride == 0) throw std::invalid_argument("NetworkMemory::set_seg_sums: zero stride");
  slot(h).seg_sums = SegSums{base, stride, len, std::move(sums)};
}

std::optional<std::uint32_t> NetworkMemory::seg_slice_sum(Handle h, std::size_t abs_off,
                                                          std::size_t len) const {
  const auto& ss = slot(h).seg_sums;
  if (!ss || abs_off < ss->base) return std::nullopt;
  const std::size_t off = abs_off - ss->base;
  if (off % ss->stride != 0) return std::nullopt;
  const std::size_t j = off / ss->stride;
  if (j >= ss->sums.size()) return std::nullopt;
  const std::size_t slice_len = std::min(ss->stride, ss->len - j * ss->stride);
  if (len != slice_len) return std::nullopt;
  return ss->sums[j];
}

std::optional<std::uint32_t> NetworkMemory::tail_sum(Handle h, std::size_t abs_off) const {
  const auto& ss = slot(h).seg_sums;
  if (!ss || abs_off < ss->base) return std::nullopt;
  const std::size_t off = abs_off - ss->base;
  if (off % ss->stride != 0) return std::nullopt;
  const std::size_t j0 = off / ss->stride;
  if (j0 >= ss->sums.size()) return std::nullopt;
  std::uint32_t acc = 0;
  std::size_t rel = 0;  // bytes accumulated so far (for odd-offset swaps)
  for (std::size_t j = j0; j < ss->sums.size(); ++j) {
    acc = checksum::combine(acc, ss->sums[j], rel);
    rel += std::min(ss->stride, ss->len - j * ss->stride);
  }
  return acc;
}

}  // namespace nectar::cab
