// The CAB's two hardware checksum units (§2.1, §4.3).
//
// Transmit: the checksum is computed while data flows *into* network memory
// (it cannot be computed during the media transfer because TCP/UDP carry the
// checksum in the header). The engine skips the first S words, sums the
// body, combines with the seed the host left in the checksum field, writes
// the finished checksum into that field, and saves the body sum so a
// header-only retransmission can be re-checksummed without touching data.
//
// Receive: computed while data flows from the network into network memory,
// starting at a host-selectable word offset, and handed to the host with the
// packet notification so protocol processing never reads the data.
//
// Both units produce RFC 1071 sums via checksum::ones_sum, so "hardware" and
// software checksums agree bit-for-bit.
#pragma once

#include <cstdint>
#include <span>

#include "checksum/internet_checksum.h"

namespace nectar::cab {

class ChecksumEngine {
 public:
  // Sum `data` starting at word offset `skip_words` (bytes before that are
  // ignored). Returns the partial (unfolded) ones-complement sum. A failed
  // unit produces a deterministically wrong sum — the summation datapath is
  // broken, but the unit's parity check notices, so DMA requests that depend
  // on a fresh sum report an error instead of silently shipping garbage
  // (SdmaEngine::execute).
  std::uint32_t sum_from(std::span<const std::byte> data, std::uint16_t skip_words) {
    const std::size_t skip = static_cast<std::size_t>(skip_words) * 4;
    if (skip >= data.size()) return 0;
    bytes_summed_ += data.size() - skip;
    const std::uint32_t sum = checksum::ones_sum(data.subspan(skip));
    if (failed_) {
      ++bad_sums_;
      return ~sum;
    }
    return sum;
  }

  // Combine a header seed (folded partial sum, as stored by the host in the
  // checksum field) with a body sum and produce the finished checksum. The
  // combine path is a separate register adder: it keeps working while the
  // summation datapath is failed, which is what lets header-rewrite
  // retransmissions (saved body sums) drain during degraded mode.
  static std::uint16_t finish_with_seed(std::uint16_t seed, std::uint32_t body_sum) {
    return checksum::finish(static_cast<std::uint32_t>(seed) + body_sum);
  }

  // Sum a replicated header block during large-segment fan-out. Like the
  // combine path this is a register-width adder separate from the summation
  // pipeline, so it keeps producing correct sums while the datapath is failed
  // — per-segment header checksums stay valid during degraded mode as long as
  // the body slice sums were saved at staging time.
  std::uint32_t header_sum(std::span<const std::byte> hdr) {
    bytes_summed_ += hdr.size();
    return checksum::ones_sum(hdr);
  }

  // Fault injection: mark the summation datapath failed / repaired. The
  // driver's recovery probe reads failed() as the unit's self-test result.
  void set_failed(bool f) noexcept { failed_ = f; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  [[nodiscard]] std::uint64_t bytes_summed() const noexcept { return bytes_summed_; }
  [[nodiscard]] std::uint64_t bad_sums() const noexcept { return bad_sums_; }

 private:
  std::uint64_t bytes_summed_ = 0;
  std::uint64_t bad_sums_ = 0;
  bool failed_ = false;
};

}  // namespace nectar::cab
