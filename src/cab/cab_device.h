// The assembled Gigabit Nectar CAB (Communication Acceleration Board).
//
// Composes network memory, the SDMA engine, and the two MDMA engines, and
// attaches to a HIPPI fabric. From the host's viewpoint (§2.2) it is "a
// large bank of memory accompanied by a means for transferring data into and
// out of that memory": the driver allocates packet buffers, posts SDMA and
// MDMA requests, and receives interrupts via callbacks.
//
// It also implements mbuf::OutboardOwner so M_WCAB mbufs can share and
// release outboard buffers without the mbuf layer knowing about the CAB.
#pragma once

#include "cab/mdma.h"
#include "cab/network_memory.h"
#include "cab/sdma.h"
#include "mbuf/descriptor.h"

namespace nectar::cab {

struct CabConfig {
  std::size_t memory_bytes = 4u << 20;  // 4 MB network memory
  std::size_t page_size = 4096;
  SdmaConfig sdma;
  MdmaConfig mdma;
};

class CabDevice final : public mbuf::OutboardOwner {
 public:
  CabDevice(sim::Simulator& sim, hippi::Fabric& fabric, hippi::Addr addr,
            const CabConfig& cfg)
      : addr_(addr),
        nm_(cfg.memory_bytes, cfg.page_size),
        sdma_(sim, nm_, cfg.sdma),
        mdma_xmit_(sim, nm_, fabric, cfg.mdma),
        mdma_recv_(sim, nm_, sdma_, cfg.mdma) {
    mdma_xmit_.set_checksum(&sdma_.checksum());
    fabric.attach(addr, &mdma_recv_);
  }

  [[nodiscard]] hippi::Addr addr() const noexcept { return addr_; }
  [[nodiscard]] NetworkMemory& nm() noexcept { return nm_; }
  [[nodiscard]] SdmaEngine& sdma() noexcept { return sdma_; }
  [[nodiscard]] MdmaXmit& mdma_xmit() noexcept { return mdma_xmit_; }
  [[nodiscard]] MdmaRecv& mdma_recv() noexcept { return mdma_recv_; }

  void outboard_retain(std::uint32_t handle) override { nm_.retain(handle); }
  void outboard_release(std::uint32_t handle) override { nm_.release(handle); }

  // Opt-in span tracing across every engine on the board.
  void set_telemetry(telemetry::Telemetry* tel, int pid) {
    nm_.set_telemetry(tel, pid);
    sdma_.set_telemetry(tel, pid);
    mdma_xmit_.set_telemetry(tel, pid);
    mdma_recv_.set_telemetry(tel, pid);
  }

  // --- fault injection / reset ----------------------------------------------

  // Firmware stall: the on-board control program wedges and every engine
  // stops serving requests. Ending the stall (the fault window closing)
  // clears only the status bit the driver's watchdog reads — the engines
  // stay wedged until the driver resets the board (CabDriver::reset).
  void set_fw_stalled(bool s) {
    fw_stalled_ = s;
    if (s) {
      sdma_.set_stalled(true);
      mdma_xmit_.set_stalled(true);
      mdma_recv_.set_stalled(true);
    }
  }
  [[nodiscard]] bool fw_stalled() const noexcept { return fw_stalled_; }

 private:
  hippi::Addr addr_;
  bool fw_stalled_ = false;
  NetworkMemory nm_;
  SdmaEngine sdma_;
  MdmaXmit mdma_xmit_;
  MdmaRecv mdma_recv_;
};

}  // namespace nectar::cab
