// The SDMA engine: scatter/gather DMA between host memory and CAB network
// memory over the (TcIA-limited) TURBOchannel (§2.1, §2.2, §7.1).
//
// One engine serves both directions plus receive auto-DMA, so all host<->CAB
// traffic contends for the same bus bandwidth — the bottleneck the paper
// identifies ("the bottleneck is the transfer of data across the
// Turbochannel"). Requests queue FIFO behind a bounded command queue (the
// register file); the host driver must check queue space.
//
// Alignment (§4.5): starting addresses in host memory must be 32-bit word
// aligned. The engine *rejects* misaligned segments by throwing — the driver
// is responsible for routing unaligned requests through the copy path, so a
// throw here is a host software bug, exactly as it would be a wedged device
// on real hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cab/arbiter.h"
#include "cab/checksum_engine.h"
#include "cab/network_memory.h"
#include "mem/address_space.h"
#include "sim/event_queue.h"

namespace nectar::telemetry {
class Telemetry;
}

namespace nectar::cab {

struct SdmaSeg {
  mem::VAddr vaddr = 0;          // simulated host address (alignment checks)
  std::span<std::byte> bytes;    // resolved host memory
};

struct SdmaRequest {
  enum class Dir { kToCab, kFromCab };
  Dir dir = Dir::kToCab;
  Handle handle = 0;
  std::size_t cab_off = 0;       // offset within the packet buffer
  std::vector<SdmaSeg> segs;     // host side, in stream order

  // Transmit checksum (kToCab only).
  bool csum_enable = false;
  std::uint16_t skip_words = 0;   // S
  std::uint16_t csum_offset = 0;  // byte offset of checksum field in packet
  // Header-rewrite (re)transmission: this request carries only headers; the
  // engine combines the seed with the packet's saved body sum.
  bool header_rewrite = false;
  // Data staging (copy-in before headers exist): compute and save the body
  // sum over this transfer, but do not touch any checksum field yet.
  bool body_sum_only = false;
  // Large-segment staging: with body_sum_only, also save one partial sum per
  // `seg_stride`-byte slice of the transfer so the MDMA fan-out can checksum
  // each wire segment without re-reading the data (NetworkMemory::SegSums).
  std::uint16_t seg_stride = 0;

  bool interrupt_on_done = false;  // paper: only the last SDMA of a write
  std::uint32_t flow = 0;          // owning transport flow (0 = unattributed)
  std::uint64_t id = 0;            // assigned by the engine
  // Set by the engine before on_complete when the transfer did not happen:
  // an injected transfer error, a checksum-unit parity abort, or an abort_all
  // during adaptor reset. No bytes moved and no checksum field was written.
  bool failed = false;
  std::function<void(const SdmaRequest&)> on_complete;
};

struct SdmaConfig {
  double bandwidth_bps = 18.75e6;       // effective TURBOchannel payload rate
  sim::Duration setup = sim::usec(20);  // per-request engine overhead
  std::size_t queue_depth = 64;
  ArbPolicy arb = ArbPolicy::kFifo;     // service discipline across flows
};

class SdmaEngine {
 public:
  SdmaEngine(sim::Simulator& sim, NetworkMemory& nm, const SdmaConfig& cfg)
      : sim_(sim), nm_(nm), cfg_(cfg), q_(cfg.arb) {}

  // Returns false if the command queue is full (request not accepted).
  bool post(SdmaRequest r);

  [[nodiscard]] std::size_t queue_space() const noexcept {
    return cfg_.queue_depth - q_.size() - (busy_ ? 1 : 0);
  }
  [[nodiscard]] bool idle() const noexcept { return !busy_ && q_.empty(); }

  struct Stats {
    std::uint64_t requests = 0;  // completions, failed ones included
    std::uint64_t bytes_to_cab = 0;
    std::uint64_t bytes_from_cab = 0;
    sim::Duration busy_time = 0;
    std::uint64_t errors = 0;    // injected transfer / checksum-parity errors
    std::uint64_t aborted = 0;   // requests failed by abort_all (reset)
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] ChecksumEngine& checksum() noexcept { return csum_; }
  [[nodiscard]] const ArbQueue<SdmaRequest>& arb() const noexcept { return q_; }
  void set_arb_policy(ArbPolicy p) noexcept { q_.set_policy(p); }
  void set_flow_weight(std::uint32_t flow, std::uint32_t weight) {
    q_.set_flow_weight(flow, weight);
  }

  // Opt-in span tracing: queue wait (sdma_queue) and bus time (sdma_xfer)
  // per request, keyed by request id under a private key namespace.
  void set_telemetry(telemetry::Telemetry* tel, int pid);

  // --- fault injection / reset ----------------------------------------------

  // Stall: the engine stops starting new requests (an in-flight transfer
  // still completes — it was already on the bus). Unstalling kicks the queue.
  void set_stalled(bool s) {
    stalled_ = s;
    if (!s) kick();
  }
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }

  // The next `n` requests that reach the engine head fail (transfer error).
  void inject_errors(std::uint32_t n) noexcept { inject_errors_ += n; }

  // Adaptor reset: fail everything queued and disown the in-flight transfer
  // (its completion still fires, with failed set). Network memory contents
  // are untouched — reset reinitializes the engines, not the packet store.
  void abort_all();

 private:
  void kick();
  void execute(SdmaRequest& r);
  [[nodiscard]] std::uint64_t tkey(std::uint64_t id) const noexcept {
    return tel_ns_ | (id & ((1ull << 40) - 1));
  }

  sim::Simulator& sim_;
  NetworkMemory& nm_;
  SdmaConfig cfg_;
  ChecksumEngine csum_;
  telemetry::Telemetry* tel_ = nullptr;
  int tel_pid_ = 0;
  std::uint64_t tel_ns_ = 0;
  bool busy_ = false;
  bool stalled_ = false;
  std::uint32_t inject_errors_ = 0;
  std::uint64_t epoch_ = 0;  // bumped by abort_all; stale completions fail
  std::uint64_t next_id_ = 1;
  ArbQueue<SdmaRequest> q_;
  Stats stats_;
};

}  // namespace nectar::cab
