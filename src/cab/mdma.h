// The two media DMA engines (§2.1, §2.2).
//
// Transmit (MdmaXmit): moves a fully-formed packet from network memory onto
// the HIPPI media, occupying the media for the packet's serialization time.
// No host interrupt is needed for TCP data — the acknowledgement confirms
// delivery — but a completion callback is available (UDP/raw senders use it
// to release the outboard buffer).
//
// Receive (MdmaRecv): terminates the HIPPI attachment. An arriving packet is
// placed in network memory, its checksum computed on the way in (starting at
// the host-configured word offset), and the first L words are auto-DMAed
// into host memory through the shared SDMA engine; the host is then
// interrupted with a receive descriptor. Packets that fit entirely in the
// auto-DMA window release their outboard buffer immediately — the host sees
// a plain data packet (the "regular mbuf" receive path, §4.2).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "cab/sdma.h"
#include "hippi/framing.h"

namespace nectar::cab {

struct MdmaConfig {
  double line_rate_bps = hippi::kLineRateBps;  // 100 MByte/s
  sim::Duration setup = sim::usec(10);
  ArbPolicy arb = ArbPolicy::kFifo;  // transmit service discipline across flows
};

class MdmaXmit {
 public:
  MdmaXmit(sim::Simulator& sim, NetworkMemory& nm, hippi::Fabric& fabric,
           const MdmaConfig& cfg)
      : sim_(sim), nm_(nm), fabric_(&fabric), cfg_(cfg), q_(cfg.arb) {}

  struct Request {
    Handle handle = 0;
    std::size_t len = 0;  // bytes to transmit from `off`
    std::uint32_t flow = 0;  // owning transport flow (0 = unattributed)
    std::function<void()> on_complete;
    std::size_t off = 0;  // first buffer byte to transmit
    // Large-segment fan-out (TSO): when tso_seg_payload > 0 and the transport
    // payload (len - tso_hdr_len) exceeds it, the engine cuts the payload into
    // wire segments of at most tso_seg_payload bytes, replicating the first
    // tso_hdr_len header bytes per segment with length/sequence/checksum
    // fixups — one engine setup for the whole burst.
    std::size_t tso_hdr_len = 0;
    std::size_t tso_seg_payload = 0;
    std::uint64_t id = 0;  // assigned by the engine (last: not brace-initialized)
  };

  void post(Request r);

  // Per-segment checksum fixups during fan-out use the shared checksum unit
  // (wired by CabDevice); unset, the engine falls back to an ideal adder.
  void set_checksum(ChecksumEngine* c) noexcept { csum_ = c; }

  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    sim::Duration busy_time = 0;
    std::uint64_t errors = 0;   // injected media errors (packet never sent)
    std::uint64_t aborted = 0;  // requests dropped by abort_all (reset)
    std::uint64_t tso_requests = 0;   // multi-segment fan-outs
    std::uint64_t tso_wire_segs = 0;  // wire packets those produced
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool idle() const noexcept { return !busy_ && q_.empty(); }
  [[nodiscard]] const ArbQueue<Request>& arb() const noexcept { return q_; }
  void set_arb_policy(ArbPolicy p) noexcept { q_.set_policy(p); }
  void set_flow_weight(std::uint32_t flow, std::uint32_t weight) {
    q_.set_flow_weight(flow, weight);
  }

  // Opt-in span tracing: queue wait (mdma_queue) and serialization time
  // (mdma_xfer) per transmit.
  void set_telemetry(telemetry::Telemetry* tel, int pid);

  // --- fault injection / reset ----------------------------------------------

  // Stall: stop starting transmits; an in-flight packet still serializes.
  void set_stalled(bool s) {
    stalled_ = s;
    if (!s) kick();
  }
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }

  // The next `n` transmits fail at the media: completion fires (refcounts
  // must still drop) but nothing reaches the fabric — a wire loss, from the
  // transport's point of view.
  void inject_errors(std::uint32_t n) noexcept { inject_errors_ += n; }

  // Adaptor reset: drop everything queued and disown the in-flight transmit.
  // Completions fire so buffer references unwind; no packet hits the wire.
  void abort_all();

 private:
  void kick();
  void kick_tso(Request r);
  [[nodiscard]] std::uint64_t tkey(std::uint64_t id) const noexcept {
    return tel_ns_ | (id & ((1ull << 40) - 1));
  }

  sim::Simulator& sim_;
  NetworkMemory& nm_;
  hippi::Fabric* fabric_;
  ChecksumEngine* csum_ = nullptr;
  MdmaConfig cfg_;
  bool busy_ = false;
  bool stalled_ = false;
  std::uint32_t inject_errors_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_id_ = 1;
  telemetry::Telemetry* tel_ = nullptr;
  int tel_pid_ = 0;
  std::uint64_t tel_ns_ = 0;
  ArbQueue<Request> q_;
  Stats stats_;
};

// Receive descriptor handed to the host interrupt handler.
struct RecvDesc {
  std::optional<Handle> handle;    // residual outboard data, if any
  std::vector<std::byte> head;     // first min(L*4, len) bytes of the packet
  std::size_t total_len = 0;       // full packet length
  std::uint32_t hw_sum = 0;        // ones-sum from rx skip offset to end
};

class MdmaRecv final : public hippi::Endpoint {
 public:
  MdmaRecv(sim::Simulator& sim, NetworkMemory& nm, SdmaEngine& sdma,
           const MdmaConfig& cfg)
      : sim_(sim), nm_(nm), sdma_(sdma), cfg_(cfg) {}

  // Host-configurable (§2.2, §4.3).
  void set_autodma_words(std::uint32_t l) noexcept { autodma_words_ = l; }
  void set_rx_skip_words(std::uint16_t s) noexcept { rx_skip_words_ = s; }
  [[nodiscard]] std::uint32_t autodma_words() const noexcept { return autodma_words_; }
  [[nodiscard]] std::uint32_t autodma_bytes() const noexcept { return autodma_words_ * 4; }

  void set_deliver(std::function<void(RecvDesc&&)> fn) { deliver_ = std::move(fn); }

  // Opt-in span tracing: recv_dma spans cover frame-landed -> host notified.
  void set_telemetry(telemetry::Telemetry* tel, int pid);

  void hippi_receive(hippi::Packet&& p) override;

  // Stall: a wedged receive engine cannot terminate the attachment, so
  // arriving packets are dropped on the floor (counted) until unstalled.
  void set_stalled(bool s) noexcept { stalled_ = s; }
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }

  struct Stats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops_no_memory = 0;
    std::uint64_t drops_stalled = 0;   // engine wedged by a fault
    std::uint64_t drops_autodma_failed = 0;  // head SDMA failed; packet lost
    std::uint64_t fully_autodma = 0;  // packets that fit in the window
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  sim::Simulator& sim_;
  NetworkMemory& nm_;
  SdmaEngine& sdma_;
  MdmaConfig cfg_;
  telemetry::Telemetry* tel_ = nullptr;
  int tel_pid_ = 0;
  std::uint64_t tel_ns_ = 0;
  std::uint64_t tel_seq_ = 0;
  bool stalled_ = false;
  std::uint32_t autodma_words_ = 176;  // paper's value
  std::uint16_t rx_skip_words_ = 20;   // HIPPI + IP headers
  std::function<void(RecvDesc&&)> deliver_;
  Stats stats_;
};

}  // namespace nectar::cab
