// Direct point-to-point HIPPI wire between two endpoints.
#pragma once

#include <unordered_map>

#include "hippi/framing.h"
#include "sim/event_queue.h"

namespace nectar::hippi {

class DirectWire final : public Fabric {
 public:
  DirectWire(sim::Simulator& sim, sim::Duration propagation = sim::usec(1.0))
      : sim_(sim), propagation_(propagation) {}

  void attach(Addr addr, Endpoint* ep) override { eps_[addr] = ep; }

  // The sender's MDMA engine already serialized the packet; a direct wire
  // only adds propagation. Unknown destinations are dropped (counted).
  void submit(Packet&& p) override;

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  sim::Simulator& sim_;
  sim::Duration propagation_;
  std::unordered_map<Addr, Endpoint*> eps_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

// Fault-injection wrapper: drops a deterministic pseudo-random fraction of
// submitted packets before they reach the inner fabric. Used by TCP
// retransmission tests (including the WCAB header-rewrite path).
class LossyFabric final : public Fabric {
 public:
  LossyFabric(Fabric& inner, double loss_rate, std::uint64_t seed)
      : inner_(inner), loss_(loss_rate), state_(seed | 1) {}

  void attach(Addr addr, Endpoint* ep) override { inner_.attach(addr, ep); }

  void submit(Packet&& p) override {
    // xorshift64*: cheap deterministic per-packet coin.
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const double u = static_cast<double>((state_ * 0x2545F4914F6CDD1DULL) >> 11) *
                     0x1.0p-53;
    if (u < loss_) {
      ++dropped_;
      return;
    }
    inner_.submit(std::move(p));
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Fabric& inner_;
  double loss_;
  std::uint64_t state_;
  std::uint64_t dropped_ = 0;
};

// Fault-injection wrapper: delays a pseudo-random fraction of packets by a
// fixed amount, reordering them relative to later traffic. Exercises TCP's
// out-of-order reassembly without loss.
class ReorderFabric final : public Fabric {
 public:
  ReorderFabric(sim::Simulator& sim, Fabric& inner, double reorder_rate,
                sim::Duration hold, std::uint64_t seed)
      : sim_(sim), inner_(inner), rate_(reorder_rate), hold_(hold),
        state_(seed | 1) {}

  void attach(Addr addr, Endpoint* ep) override { inner_.attach(addr, ep); }

  void submit(Packet&& p) override {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const double u = static_cast<double>((state_ * 0x2545F4914F6CDD1DULL) >> 11) *
                     0x1.0p-53;
    if (u < rate_) {
      ++reordered_;
      auto held = std::make_shared<Packet>(std::move(p));
      sim_.after(hold_, [this, held]() mutable { inner_.submit(std::move(*held)); });
      return;
    }
    inner_.submit(std::move(p));
  }

  [[nodiscard]] std::uint64_t reordered() const noexcept { return reordered_; }

 private:
  sim::Simulator& sim_;
  Fabric& inner_;
  double rate_;
  sim::Duration hold_;
  std::uint64_t state_;
  std::uint64_t reordered_ = 0;
};

}  // namespace nectar::hippi
