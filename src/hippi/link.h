// Direct point-to-point HIPPI wire between two endpoints.
//
// Fault-injection wrappers (LossyFabric, ReorderFabric, CorruptFabric, ...)
// live in hippi/impairment.h; it is included here so existing users of
// link.h keep seeing LossyFabric/ReorderFabric.
#pragma once

#include <unordered_map>

#include "hippi/framing.h"
#include "hippi/impairment.h"
#include "sim/event_queue.h"

namespace nectar::telemetry {
class Telemetry;
}

namespace nectar::hippi {

class DirectWire final : public Fabric {
 public:
  DirectWire(sim::Simulator& sim, sim::Duration propagation = sim::usec(1.0))
      : sim_(sim), propagation_(propagation) {}

  void attach(Addr addr, Endpoint* ep) override { eps_[addr] = ep; }

  // The sender's MDMA engine already serialized the packet; a direct wire
  // only adds propagation. Unknown destinations are dropped (counted).
  void submit(Packet&& p) override;

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  // Opt-in span tracing: link_transit spans (submit -> remote receive), one
  // per delivered frame.
  void set_telemetry(telemetry::Telemetry* tel, int pid);

 private:
  sim::Simulator& sim_;
  sim::Duration propagation_;
  std::unordered_map<Addr, Endpoint*> eps_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  telemetry::Telemetry* tel_ = nullptr;
  int tel_pid_ = 0;
  std::uint64_t tel_ns_ = 0;
};

}  // namespace nectar::hippi
