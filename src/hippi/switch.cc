#include "hippi/switch.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace nectar::hippi {

void Switch::attach(Addr addr, Endpoint* ep) {
  if (addr_to_port_.contains(addr))
    throw std::invalid_argument("hippi::Switch: address already attached");
  addr_to_port_[addr] = ports_.size();
  Port p;
  p.addr = addr;
  p.ep = ep;
  ports_.push_back(std::move(p));
}

std::size_t Switch::port_of(Addr addr) const {
  auto it = addr_to_port_.find(addr);
  if (it == addr_to_port_.end())
    throw std::out_of_range("hippi::Switch: unknown address");
  return it->second;
}

const Switch::PortStats& Switch::port_stats(Addr addr) const {
  return ports_[port_of(addr)].stats;
}

std::size_t Switch::input_backlog(Addr addr) const {
  const Port& p = ports_[port_of(addr)];
  if (mode_ == MacMode::kFifo) return p.fifo.size();
  std::size_t n = 0;
  for (const auto& [dst, q] : p.voq) n += q.size();
  return n;
}

void Switch::submit(Packet&& p) {
  const FrameHeader h = p.header();
  auto src_it = addr_to_port_.find(h.src);
  auto dst_it = addr_to_port_.find(h.dst);
  if (src_it == addr_to_port_.end() || dst_it == addr_to_port_.end()) {
    ++dropped_;
    return;
  }
  const std::size_t in = src_it->second;
  Port& port = ports_[in];
  if (mode_ == MacMode::kFifo) {
    port.fifo.push_back(std::move(p));
    port.stats.max_queue_depth = std::max(port.stats.max_queue_depth, port.fifo.size());
  } else {
    const std::size_t out = dst_it->second;
    auto [it, inserted] = port.voq.try_emplace(out);
    if (inserted) port.voq_order.push_back(out);
    it->second.push_back(std::move(p));
    port.stats.max_queue_depth =
        std::max(port.stats.max_queue_depth, input_backlog(h.src));
  }
  try_match(in);
}

void Switch::try_match(std::size_t input) {
  Port& in = ports_[input];
  if (in.input_busy) return;

  if (mode_ == MacMode::kFifo) {
    if (in.fifo.empty()) return;
    const std::size_t out = port_of(in.fifo.front().header().dst);
    if (ports_[out].output_busy) return;  // HOL blocking: nothing else may go
    Packet p = std::move(in.fifo.front());
    in.fifo.pop_front();
    start_transfer(input, out, std::move(p));
    return;
  }

  // Logical channels: round-robin over per-destination queues, sending the
  // first whose destination is idle.
  const std::size_t n = in.voq_order.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = (in.rr_next + k) % n;
    const std::size_t out = in.voq_order[idx];
    auto& q = in.voq[out];
    if (q.empty() || ports_[out].output_busy) continue;
    Packet p = std::move(q.front());
    q.pop_front();
    in.rr_next = (idx + 1) % n;
    start_transfer(input, out, std::move(p));
    return;
  }
}

void Switch::try_match_all() {
  for (std::size_t i = 0; i < ports_.size(); ++i) try_match(i);
}

void Switch::start_transfer(std::size_t input, std::size_t output, Packet&& p) {
  Port& in = ports_[input];
  Port& out = ports_[output];
  in.input_busy = true;
  out.output_busy = true;

  const auto size = static_cast<std::int64_t>(p.size());
  const sim::Duration ser = sim::transfer_time(size, rate_);
  out.stats.output_busy += ser;

  auto shared = std::make_shared<Packet>(std::move(p));
  sim_.after(ser + propagation_, [this, input, output, shared]() mutable {
    Port& i = ports_[input];
    Port& o = ports_[output];
    i.input_busy = false;
    o.output_busy = false;
    o.stats.delivered_packets += 1;
    o.stats.delivered_bytes += shared->size();
    if (o.ep != nullptr) o.ep->hippi_receive(std::move(*shared));
    try_match_all();
  });
}

double Switch::utilization(sim::Time elapsed) const {
  if (elapsed <= 0 || ports_.empty()) return 0.0;
  double busy = 0.0;
  for (const auto& p : ports_) busy += sim::to_seconds(p.stats.output_busy);
  return busy / (sim::to_seconds(elapsed) * static_cast<double>(ports_.size()));
}

}  // namespace nectar::hippi
