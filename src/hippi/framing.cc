#include "hippi/framing.h"

#include <cstring>
#include <stdexcept>

#include "checksum/wire.h"

namespace nectar::hippi {

void write_header(std::span<std::byte> out, const FrameHeader& h) {
  if (out.size() < kHeaderSize)
    throw std::invalid_argument("hippi::write_header: buffer too small");
  std::memset(out.data(), 0, kHeaderSize);
  wire::store_be32(out.data() + 0, h.dst);
  wire::store_be32(out.data() + 4, h.src);
  wire::store_be16(out.data() + 8, h.type);
  wire::store_be16(out.data() + 10, h.channel);
  wire::store_be32(out.data() + 12, h.payload_len);
}

FrameHeader read_header(std::span<const std::byte> in) {
  if (in.size() < kHeaderSize)
    throw std::invalid_argument("hippi::read_header: frame too small");
  FrameHeader h;
  h.dst = wire::load_be32(in.data() + 0);
  h.src = wire::load_be32(in.data() + 4);
  h.type = wire::load_be16(in.data() + 8);
  h.channel = wire::load_be16(in.data() + 10);
  h.payload_len = wire::load_be32(in.data() + 12);
  return h;
}

}  // namespace nectar::hippi
