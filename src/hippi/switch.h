// Input-queued HIPPI switch with two MAC modes (paper §2.1).
//
// HIPPI is connection-oriented at the switch: a sender transfers one packet
// at a time to a destination port, and a destination port accepts one packet
// at a time. With a single FIFO transmit queue per sender, a busy destination
// blocks every packet behind the head — the Head-Of-Line problem, which
// limits aggregate utilization to ~58% under uniform random traffic
// (Hluchyj & Karol [10]). The CAB works around it with "logical channels":
// queues of packets with different destinations, so the sender can bypass a
// blocked head. Mode kLogicalChannels models that as per-destination queues
// with round-robin service.
//
// The switch is store-and-forward: a transfer occupies both the input and the
// output for the packet's serialization time at line rate.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "hippi/framing.h"
#include "sim/event_queue.h"

namespace nectar::hippi {

enum class MacMode {
  kFifo,             // one FIFO per input; HOL blocking
  kLogicalChannels,  // per-destination queues per input (VOQ)
};

class Switch final : public Fabric {
 public:
  Switch(sim::Simulator& sim, MacMode mode, double line_rate_bps = kLineRateBps,
         sim::Duration propagation = sim::usec(1.0))
      : sim_(sim), mode_(mode), rate_(line_rate_bps), propagation_(propagation) {}

  void attach(Addr addr, Endpoint* ep) override;
  void submit(Packet&& p) override;

  struct PortStats {
    std::uint64_t delivered_packets = 0;
    std::uint64_t delivered_bytes = 0;
    sim::Duration output_busy = 0;
    std::size_t max_queue_depth = 0;
  };
  [[nodiscard]] const PortStats& port_stats(Addr addr) const;
  [[nodiscard]] std::size_t num_ports() const noexcept { return ports_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  // Aggregate output utilization since t=0: delivered-byte time / (N * elapsed).
  [[nodiscard]] double utilization(sim::Time elapsed) const;

  // Total packets queued at an input (all channels).
  [[nodiscard]] std::size_t input_backlog(Addr addr) const;

 private:
  struct Port {
    Addr addr = 0;
    Endpoint* ep = nullptr;
    bool input_busy = false;
    bool output_busy = false;
    std::deque<Packet> fifo;                                  // kFifo mode
    std::unordered_map<std::size_t, std::deque<Packet>> voq;  // kLogicalChannels
    std::vector<std::size_t> voq_order;  // round-robin scan order
    std::size_t rr_next = 0;
    PortStats stats;
  };

  std::size_t port_of(Addr addr) const;
  void try_match(std::size_t input);
  void try_match_all();
  void start_transfer(std::size_t input, std::size_t output, Packet&& p);

  sim::Simulator& sim_;
  MacMode mode_;
  double rate_;
  sim::Duration propagation_;
  std::vector<Port> ports_;
  std::unordered_map<Addr, std::size_t> addr_to_port_;
  std::uint64_t dropped_ = 0;
};

}  // namespace nectar::hippi
