// Composable fault-injection wrappers ("impairments") for HIPPI fabrics.
//
// Each impairment interposes on an inner Fabric, applies one kind of wire
// fault to submitted frames, and counts exactly what it did. Impairments
// stack by wrapping each other, so a testbed can model a lossy, corrupting,
// duplicating, reordering, rate-limited, partitionable wire from independent
// pieces. All randomness comes from ImpairmentRng, a per-fabric
// deterministic coin: a given seed always produces the same fault pattern,
// which is what makes the conformance tests exact.
//
// The corruption model flips bits only *after* the HIPPI framing header:
// real HIPPI-PH/FP protects framing with its own parity and LLRC, so a frame
// whose framing is damaged never reaches the endpoint at all — what the
// outboard checksum engine must catch is damage to the IP header, transport
// header, or payload.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hippi/framing.h"
#include "sim/event_queue.h"

namespace nectar::hippi {

// xorshift64*: the cheap deterministic per-packet coin, factored out of the
// (formerly duplicated) LossyFabric / ReorderFabric implementations. The
// sequence is identical to the old inline code for a given seed.
class ImpairmentRng {
 public:
  explicit ImpairmentRng(std::uint64_t seed) noexcept : state_(seed | 1) {}

  std::uint64_t next() noexcept {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // True with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  // Uniform integer in [0, n); n == 0 returns 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    return n == 0 ? 0
                  : static_cast<std::uint64_t>(uniform() *
                                               static_cast<double>(n));
  }

 private:
  std::uint64_t state_;
};

// Base for all impairments: forwards attach to the inner fabric and exposes
// the impairment's counters in a machine-readable form for the JSON stats
// exporter (core::impairments_json).
class ImpairedFabric : public Fabric {
 public:
  explicit ImpairedFabric(Fabric& inner) : inner_(inner) {}

  void attach(Addr addr, Endpoint* ep) override { inner_.attach(addr, ep); }

  [[nodiscard]] virtual const char* kind() const noexcept = 0;
  [[nodiscard]] virtual std::vector<std::pair<std::string, std::uint64_t>>
  counters() const = 0;

 protected:
  Fabric& inner_;
};

// Drops a deterministic pseudo-random fraction of submitted packets before
// they reach the inner fabric. Used by TCP retransmission tests (including
// the WCAB header-rewrite path).
class LossyFabric final : public ImpairedFabric {
 public:
  LossyFabric(Fabric& inner, double loss_rate, std::uint64_t seed)
      : ImpairedFabric(inner), loss_(loss_rate), rng_(seed) {}

  void submit(Packet&& p) override {
    if (rng_.chance(loss_)) {
      ++dropped_;
      return;
    }
    inner_.submit(std::move(p));
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  [[nodiscard]] const char* kind() const noexcept override { return "loss"; }
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const override {
    return {{"dropped", dropped_}};
  }

 private:
  double loss_;
  ImpairmentRng rng_;
  std::uint64_t dropped_ = 0;
};

// Delays a pseudo-random fraction of packets by a fixed amount, reordering
// them relative to later traffic. Exercises TCP's out-of-order reassembly
// without loss.
class ReorderFabric final : public ImpairedFabric {
 public:
  ReorderFabric(sim::Simulator& sim, Fabric& inner, double reorder_rate,
                sim::Duration hold, std::uint64_t seed)
      : ImpairedFabric(inner), sim_(sim), rate_(reorder_rate), hold_(hold),
        rng_(seed) {}

  void submit(Packet&& p) override;

  [[nodiscard]] std::uint64_t reordered() const noexcept { return reordered_; }

  [[nodiscard]] const char* kind() const noexcept override { return "reorder"; }
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const override {
    return {{"reordered", reordered_}};
  }

 private:
  sim::Simulator& sim_;
  double rate_;
  sim::Duration hold_;
  ImpairmentRng rng_;
  std::uint64_t reordered_ = 0;
};

// Flips one deterministic pseudo-random bit in a fraction of frames, at a
// uniform offset past the HIPPI framing header — i.e. in the IP header,
// transport header, or payload. The outboard checksum path (receive
// ChecksumEngine sum + host pseudo-header add, or verify_ip_checksum for
// header damage) must detect and drop every such frame.
class CorruptFabric final : public ImpairedFabric {
 public:
  CorruptFabric(Fabric& inner, double corrupt_rate, std::uint64_t seed,
                std::size_t min_offset = kHeaderSize)
      : ImpairedFabric(inner), rate_(corrupt_rate), min_offset_(min_offset),
        rng_(seed) {}

  void submit(Packet&& p) override;

  [[nodiscard]] std::uint64_t corrupted() const noexcept { return corrupted_; }
  // Byte offset of the most recent flip (tests pin exact positions).
  [[nodiscard]] std::size_t last_offset() const noexcept { return last_offset_; }

  [[nodiscard]] const char* kind() const noexcept override { return "corrupt"; }
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const override {
    return {{"corrupted", corrupted_}};
  }

 private:
  double rate_;
  std::size_t min_offset_;
  ImpairmentRng rng_;
  std::uint64_t corrupted_ = 0;
  std::size_t last_offset_ = 0;
};

// Duplicates a fraction of frames (original first, copy immediately after),
// exercising TCP's duplicate-segment drop and dup-ACK handling.
class DupFabric final : public ImpairedFabric {
 public:
  DupFabric(Fabric& inner, double dup_rate, std::uint64_t seed)
      : ImpairedFabric(inner), rate_(dup_rate), rng_(seed) {}

  void submit(Packet&& p) override {
    if (rng_.chance(rate_)) {
      ++duplicated_;
      Packet copy = p;  // full byte copy: the duplicate is bit-identical
      inner_.submit(std::move(p));
      inner_.submit(std::move(copy));
      return;
    }
    inner_.submit(std::move(p));
  }

  [[nodiscard]] std::uint64_t duplicated() const noexcept { return duplicated_; }

  [[nodiscard]] const char* kind() const noexcept override { return "dup"; }
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const override {
    return {{"duplicated", duplicated_}};
  }

 private:
  double rate_;
  ImpairmentRng rng_;
  std::uint64_t duplicated_ = 0;
};

// Token-bucket bottleneck: frames are held until the bucket has earned one
// byte of credit per frame byte (refill `bandwidth_bps` bytes/s, capacity
// `burst_bytes`), serializing FIFO behind earlier held frames. Models a slow
// link segment; enables congestion / persist-timer scenarios. Frames that
// would exceed `queue_limit_bytes` of backlog are dropped (tail drop), like
// a real bottleneck queue.
class RateLimitFabric final : public ImpairedFabric {
 public:
  RateLimitFabric(sim::Simulator& sim, Fabric& inner, double bandwidth_bps,
                  std::size_t burst_bytes = 64 * 1024,
                  std::size_t queue_limit_bytes = 4 * 1024 * 1024)
      : ImpairedFabric(inner), sim_(sim), bandwidth_bps_(bandwidth_bps),
        burst_(burst_bytes), queue_limit_(queue_limit_bytes),
        tokens_(static_cast<double>(burst_bytes)) {}

  void submit(Packet&& p) override;

  [[nodiscard]] std::uint64_t passed() const noexcept { return passed_; }
  [[nodiscard]] std::uint64_t delayed() const noexcept { return delayed_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t backlog_bytes() const noexcept { return backlog_; }

  [[nodiscard]] const char* kind() const noexcept override { return "rate_limit"; }
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const override {
    return {{"passed", passed_}, {"delayed", delayed_}, {"dropped", dropped_}};
  }

 private:
  sim::Simulator& sim_;
  double bandwidth_bps_;  // bytes/s, like every other *_bps in this codebase
  std::size_t burst_;
  std::size_t queue_limit_;
  double tokens_;            // credit available at time mark_
  sim::Time mark_ = 0;       // when tokens_ was last brought current
  sim::Time horizon_ = 0;    // departure time of the last accepted frame
  std::size_t backlog_ = 0;  // bytes held but not yet forwarded
  std::uint64_t passed_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t dropped_ = 0;
};

// Time-windowed blackhole: while the partition is active every frame
// vanishes, exercising RTO backoff and recovery once the fabric heals.
// Windows can be scheduled up front (add_window) or toggled manually
// (set_down) from a test or experiment script.
class PartitionFabric final : public ImpairedFabric {
 public:
  PartitionFabric(sim::Simulator& sim, Fabric& inner)
      : ImpairedFabric(inner), sim_(sim) {}

  // Blackhole every frame submitted in [start, end).
  void add_window(sim::Time start, sim::Time end) {
    windows_.emplace_back(start, end);
  }
  void set_down(bool down) noexcept { down_ = down; }

  [[nodiscard]] bool active() const noexcept {
    if (down_) return true;
    const sim::Time now = sim_.now();
    for (const auto& [s, e] : windows_) {
      if (s <= now && now < e) return true;
    }
    return false;
  }

  void submit(Packet&& p) override {
    if (active()) {
      ++blackholed_;
      return;
    }
    ++passed_;
    inner_.submit(std::move(p));
  }

  [[nodiscard]] std::uint64_t blackholed() const noexcept { return blackholed_; }
  [[nodiscard]] std::uint64_t passed() const noexcept { return passed_; }

  [[nodiscard]] const char* kind() const noexcept override { return "partition"; }
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const override {
    return {{"blackholed", blackholed_}, {"passed", passed_}};
  }

 private:
  sim::Simulator& sim_;
  std::vector<std::pair<sim::Time, sim::Time>> windows_;
  bool down_ = false;
  std::uint64_t blackholed_ = 0;
  std::uint64_t passed_ = 0;
};

}  // namespace nectar::hippi
