#include "hippi/link.h"

#include <utility>

namespace nectar::hippi {

void DirectWire::submit(Packet&& p) {
  const FrameHeader h = p.header();
  auto it = eps_.find(h.dst);
  if (it == eps_.end()) {
    ++dropped_;
    return;
  }
  Endpoint* ep = it->second;
  ++delivered_;
  sim_.after(propagation_, [ep, p = std::move(p)]() mutable {
    ep->hippi_receive(std::move(p));
  });
}

}  // namespace nectar::hippi
