#include "hippi/link.h"

#include <memory>

namespace nectar::hippi {

void DirectWire::submit(Packet&& p) {
  const FrameHeader h = p.header();
  auto it = eps_.find(h.dst);
  if (it == eps_.end()) {
    ++dropped_;
    return;
  }
  Endpoint* ep = it->second;
  ++delivered_;
  auto shared = std::make_shared<Packet>(std::move(p));
  sim_.after(propagation_, [ep, shared]() mutable {
    ep->hippi_receive(std::move(*shared));
  });
}

}  // namespace nectar::hippi
