#include "hippi/link.h"

#include <utility>

#include "telemetry/telemetry.h"

namespace nectar::hippi {

void DirectWire::set_telemetry(telemetry::Telemetry* tel, int pid) {
  tel_ = tel;
  tel_pid_ = pid;
  tel_ns_ = tel ? tel->alloc_key_namespace() : 0;
}

void DirectWire::submit(Packet&& p) {
  const FrameHeader h = p.header();
  auto it = eps_.find(h.dst);
  if (it == eps_.end()) {
    ++dropped_;
    return;
  }
  Endpoint* ep = it->second;
  ++delivered_;
  std::uint64_t span_key = 0;
  if (tel_ != nullptr) {
    span_key = tel_ns_ | (delivered_ & ((1ull << 40) - 1));
    tel_->span_begin(telemetry::Stage::kLinkTransit, tel_pid_, span_key);
  }
  sim_.after(propagation_, [this, ep, span_key, p = std::move(p)]() mutable {
    if (tel_ != nullptr && span_key != 0)
      tel_->span_end(telemetry::Stage::kLinkTransit, span_key);
    ep->hippi_receive(std::move(p));
  });
}

}  // namespace nectar::hippi
