#include "hippi/shard_link.h"

#include <stdexcept>
#include <utility>

namespace nectar::hippi {

void ShardDownlink::hippi_receive(Packet&& p) {
  ++delivered_;
  const sim::Time t = eng_.sim(fabric_shard_).now() + hop_;
  eng_.post(fabric_shard_, host_shard_, t,
            [ep = &ep_, p = std::move(p)]() mutable {
              ep->hippi_receive(std::move(p));
            });
}

ShardUplink::ShardUplink(sim::ParallelEngine& eng, std::size_t host_shard,
                         std::size_t fabric_shard, sim::Duration hop,
                         Fabric& chain)
    : eng_(eng), host_shard_(host_shard), fabric_shard_(fabric_shard),
      hop_(hop), chain_(chain) {
  if (hop_ < eng_.lookahead())
    throw std::invalid_argument(
        "ShardUplink: wire hop must cover the engine lookahead");
}

void ShardUplink::attach(Addr addr, Endpoint* ep) {
  downlinks_.push_back(std::make_unique<ShardDownlink>(
      eng_, fabric_shard_, host_shard_, hop_, *ep));
  chain_.attach(addr, downlinks_.back().get());
}

void ShardUplink::submit(Packet&& p) {
  ++submitted_;
  const sim::Time t = eng_.sim(host_shard_).now() + hop_;
  eng_.post(host_shard_, fabric_shard_, t,
            [chain = &chain_, p = std::move(p)]() mutable {
              chain->submit(std::move(p));
            });
}

}  // namespace nectar::hippi
