// HIPPI framing (simplified HIPPI-FP).
//
// The frame header is fixed at 60 bytes so that HIPPI + IP headers together
// occupy exactly 20 four-byte words — the receive-side checksum offset the
// paper's CAB uses ("the offset ... is set to 20 words in our implementation,
// i.e. the HIPPI and IP header are skipped", §4.3). The real HIPPI-FP D1 area
// is variable; the CAB implementation pinned it, and so do we.
//
// Layout (all multi-byte fields big-endian):
//   [0..3]   destination switch address (ULA)
//   [4..7]   source switch address
//   [8..9]   payload type (0x0800 = IPv4)
//   [10..11] logical channel id (the CAB's HOL-avoidance mechanism, §2.1)
//   [12..15] payload length in bytes
//   [16..59] reserved (zero)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nectar::hippi {

inline constexpr std::size_t kHeaderSize = 60;
inline constexpr std::uint16_t kTypeIp = 0x0800;
inline constexpr std::uint16_t kTypeRaw = 0x88B5;  // raw-HIPPI test traffic

// HIPPI line rate: 100 MByte/s (§2.1).
inline constexpr double kLineRateBps = 100.0 * 1e6;

using Addr = std::uint32_t;

struct FrameHeader {
  Addr dst = 0;
  Addr src = 0;
  std::uint16_t type = kTypeIp;
  std::uint16_t channel = 0;
  std::uint32_t payload_len = 0;
};

// Serialize `h` into the first kHeaderSize bytes of `out`.
void write_header(std::span<std::byte> out, const FrameHeader& h);

// Parse the first kHeaderSize bytes of `in`.
FrameHeader read_header(std::span<const std::byte> in);

// A frame in flight: full bytes (header + payload).
struct Packet {
  std::vector<std::byte> bytes;

  [[nodiscard]] std::size_t size() const noexcept { return bytes.size(); }
  [[nodiscard]] FrameHeader header() const { return read_header(bytes); }
};

// Anything that can terminate a HIPPI attachment (a CAB MDMA receive engine,
// or a test sink).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void hippi_receive(Packet&& p) = 0;
};

// A fabric connects endpoints: either a direct wire or a switch. The sender
// has already paid media serialization (its MDMA engine holds the packet for
// size/line-rate); the fabric adds propagation and any switching delays.
class Fabric {
 public:
  virtual ~Fabric() = default;
  virtual void attach(Addr addr, Endpoint* ep) = 0;
  virtual void submit(Packet&& p) = 0;
};

}  // namespace nectar::hippi
