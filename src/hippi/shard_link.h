// Cross-shard wire handoff for the parallel simulation engine.
//
// In a sharded topology every Host owns a shard and the shared fabric — the
// switch plus its impairment chain — owns a dedicated fabric shard. Frames
// cross the boundary through two proxies:
//
//   host CAB --ShardUplink::submit-->  [post, +hop]  --> fabric-shard chain
//   fabric chain --ShardDownlink-->    [post, +hop]  --> host CAB endpoint
//
// Each crossing adds `hop` of wire propagation, and `hop` must be >= the
// engine lookahead: that latency is exactly what makes conservative epoch
// windows sound (nothing a shard sends can land inside the current window).
// The switch keeps its own store-and-forward timing on the fabric shard, so
// a sharded path costs hop + switch + hop where the single-simulator switch
// topology costs its one propagation — physically, longer cables to the
// switch room.
#pragma once

#include <memory>
#include <vector>

#include "hippi/framing.h"
#include "sim/parallel_engine.h"

namespace nectar::hippi {

// Endpoint proxy living on the fabric shard: forwards a delivered frame to
// the real endpoint on the host's shard, one hop later.
class ShardDownlink final : public Endpoint {
 public:
  ShardDownlink(sim::ParallelEngine& eng, std::size_t fabric_shard,
                std::size_t host_shard, sim::Duration hop, Endpoint& ep)
      : eng_(eng), fabric_shard_(fabric_shard), host_shard_(host_shard),
        hop_(hop), ep_(ep) {}

  void hippi_receive(Packet&& p) override;

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }

 private:
  sim::ParallelEngine& eng_;
  std::size_t fabric_shard_;
  std::size_t host_shard_;
  sim::Duration hop_;
  Endpoint& ep_;
  std::uint64_t delivered_ = 0;
};

// Fabric proxy handed to one host's CAB: submits cross the shard boundary to
// the real chain; attach() plants a ShardDownlink on the fabric side so
// deliveries cross back.
class ShardUplink final : public Fabric {
 public:
  // `chain` is the outermost fabric layer on the fabric shard. Throws
  // std::invalid_argument if hop < the engine lookahead.
  ShardUplink(sim::ParallelEngine& eng, std::size_t host_shard,
              std::size_t fabric_shard, sim::Duration hop, Fabric& chain);

  void attach(Addr addr, Endpoint* ep) override;
  void submit(Packet&& p) override;

  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ShardDownlink>>& downlinks()
      const noexcept {
    return downlinks_;
  }

 private:
  sim::ParallelEngine& eng_;
  std::size_t host_shard_;
  std::size_t fabric_shard_;
  sim::Duration hop_;
  Fabric& chain_;
  std::uint64_t submitted_ = 0;
  std::vector<std::unique_ptr<ShardDownlink>> downlinks_;
};

}  // namespace nectar::hippi
