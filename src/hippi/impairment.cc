#include "hippi/impairment.h"

#include <algorithm>

#include "sim/time.h"

namespace nectar::hippi {

void ReorderFabric::submit(Packet&& p) {
  if (rng_.chance(rate_)) {
    ++reordered_;
    // Move the packet straight into the callback: Packet is copyable, so
    // std::function can hold the lambda, but only the single moved-in
    // instance is ever submitted — the held frame is delivered exactly once
    // with no shared_ptr indirection.
    sim_.after(hold_, [this, p = std::move(p)]() mutable {
      inner_.submit(std::move(p));
    });
    return;
  }
  inner_.submit(std::move(p));
}

void CorruptFabric::submit(Packet&& p) {
  if (p.size() > min_offset_ && rng_.chance(rate_)) {
    ++corrupted_;
    const std::size_t off =
        min_offset_ + static_cast<std::size_t>(
                          rng_.below(static_cast<std::uint64_t>(p.size() - min_offset_)));
    const unsigned bit = static_cast<unsigned>(rng_.below(8));
    p.bytes[off] ^= static_cast<std::byte>(1u << bit);
    last_offset_ = off;
  }
  inner_.submit(std::move(p));
}

void RateLimitFabric::submit(Packet&& p) {
  const auto size = static_cast<double>(p.size());
  // A frame may not depart before the one queued ahead of it (FIFO), and
  // never before now.
  const sim::Time earliest = std::max(sim_.now(), horizon_);
  // Bring the bucket current to `earliest`, capped at the burst size.
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + bandwidth_bps_ *
                                   sim::to_seconds(earliest - mark_));
  mark_ = earliest;

  sim::Time depart = earliest;
  if (tokens_ >= size) {
    tokens_ -= size;
  } else {
    depart = earliest + sim::transfer_time(
                            static_cast<std::int64_t>(size - tokens_),
                            bandwidth_bps_);
    tokens_ = 0.0;
    // The bucket is drained through `depart`, so future refills start there.
    mark_ = depart;
  }

  if (depart == sim_.now()) {
    ++passed_;
    horizon_ = depart;
    inner_.submit(std::move(p));
    return;
  }

  if (backlog_ + p.size() > queue_limit_) {
    ++dropped_;
    return;
  }
  ++delayed_;
  backlog_ += p.size();
  horizon_ = depart;
  const std::size_t sz = p.size();
  sim_.after(depart - sim_.now(), [this, sz, p = std::move(p)]() mutable {
    backlog_ -= sz;
    inner_.submit(std::move(p));
  });
}

}  // namespace nectar::hippi
