#include "mem/pin_cache.h"

namespace nectar::mem {

sim::Task<void> PinCache::acquire(AddressSpace& as, VAddr addr, std::size_t len,
                                  sim::AccountId acct, sim::Priority prio) {
  const std::size_t n = pages_spanned(addr, len);
  if (n == 0) co_return;

  if (!enabled()) {
    co_await vm_.pin(as, addr, len, acct, prio);
    co_await vm_.map(as, addr, len, acct, prio);
    co_return;
  }

  std::size_t misses = 0;
  VAddr page = page_base(addr);
  for (std::size_t i = 0; i < n; ++i, page += kPageSize) {
    const PageKey key{&as, page};
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.page_hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh
    } else {
      ++stats_.page_misses;
      ++misses;
      lru_.push_front(key);
      index_.emplace(key, lru_.begin());
      vm_.pin_page_nocost(as, page);
    }
  }

  if (misses > 0) {
    // One batched pin + map for the missing pages (Table 2 cost with
    // n = misses); residency bookkeeping was done per page above.
    co_await vm_.charge_pin(misses, acct, prio);
    co_await vm_.charge_map(misses, acct, prio);
  }

  // Evict LRU pages beyond the budget (batched unpin).
  if (lru_.size() > max_pages_) {
    const std::size_t excess = lru_.size() - max_pages_;
    std::size_t evicted = 0;
    while (evicted < excess && !lru_.empty()) {
      const PageKey victim = lru_.back();
      lru_.pop_back();
      index_.erase(victim);
      vm_.unpin_page_nocost(*victim.as, victim.page);
      ++evicted;
    }
    stats_.evictions += evicted;
    co_await vm_.charge_unpin(evicted, acct, prio);
  }
}

sim::Task<void> PinCache::release(AddressSpace& as, VAddr addr, std::size_t len,
                                  sim::AccountId acct, sim::Priority prio) {
  if (enabled()) co_return;  // lazy: nothing to do
  co_await vm_.unpin(as, addr, len, acct, prio);
}

sim::Task<void> PinCache::flush(sim::AccountId acct, sim::Priority prio) {
  if (lru_.empty()) co_return;
  const std::size_t n = lru_.size();
  for (const auto& key : lru_) vm_.unpin_page_nocost(*key.as, key.page);
  lru_.clear();
  index_.clear();
  co_await vm_.charge_unpin(n, acct, prio);
}

}  // namespace nectar::mem
