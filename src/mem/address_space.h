// Simulated virtual address spaces.
//
// Each simulated process (and each host kernel) owns an AddressSpace: a set
// of regions with simulated virtual addresses backed by real host memory.
// Data movement in the stack operates on real bytes obtained by translating
// (vaddr, len) to a span, so end-to-end integrity is checkable, while the
// vaddr layer lets tests construct the unaligned buffers that exercise the
// paper's §4.5 alignment fallback.
//
// Regions never abut: a guard gap follows every region, so an out-of-range
// access is caught by translate() rather than silently touching a neighbour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace nectar::mem {

using VAddr = std::uint64_t;

// DEC Alpha page size, which the paper's Table 2 costs are in terms of.
inline constexpr std::size_t kPageSize = 8192;

constexpr VAddr page_base(VAddr a) noexcept { return a & ~VAddr{kPageSize - 1}; }
constexpr std::size_t page_offset(VAddr a) noexcept { return a & (kPageSize - 1); }

// Number of pages spanned by [addr, addr+len).
constexpr std::size_t pages_spanned(VAddr addr, std::size_t len) noexcept {
  if (len == 0) return 0;
  return (page_offset(addr) + len + kPageSize - 1) / kPageSize;
}

class AddressSpace {
 public:
  explicit AddressSpace(std::string name) : name_(std::move(name)) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Allocate a region of `size` bytes. The returned address is page-aligned
  // plus `misalign` bytes (misalign < kPageSize), letting tests place buffers
  // on 16-bit-but-not-32-bit boundaries etc.
  VAddr allocate(std::size_t size, std::size_t misalign = 0);

  void deallocate(VAddr base);

  // Translate to real memory. Throws std::out_of_range if any byte of
  // [addr, addr+len) is unmapped ("segfault").
  std::span<std::byte> write_view(VAddr addr, std::size_t len);
  std::span<const std::byte> read_view(VAddr addr, std::size_t len) const;

  [[nodiscard]] bool valid(VAddr addr, std::size_t len) const noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }
  [[nodiscard]] std::size_t bytes_mapped() const noexcept { return bytes_mapped_; }

 private:
  struct Region {
    std::size_t size;                 // usable bytes at key address
    std::vector<std::byte> backing;   // real storage
  };

  // Key is the region's user-visible base address.
  const Region* find(VAddr addr, std::size_t len) const noexcept;

  std::string name_;
  std::map<VAddr, Region> regions_;
  VAddr next_ = 0x0000'0001'0000'0000ULL;  // distinctive, page aligned
  std::size_t bytes_mapped_ = 0;
};

// Scattered user memory descriptor: the `uio` the paper's M_UIO mbufs carry.
struct UioVec {
  VAddr base = 0;
  std::size_t len = 0;
};

struct Uio {
  AddressSpace* space = nullptr;
  std::vector<UioVec> iov;

  [[nodiscard]] std::size_t total_len() const noexcept {
    std::size_t n = 0;
    for (const auto& v : iov) n += v.len;
    return n;
  }

  // Sub-range [off, off+len) of the logical byte stream this uio describes.
  [[nodiscard]] Uio slice(std::size_t off, std::size_t len) const;

  // True if every vector base (and all interior vector boundaries) are
  // 32-bit aligned — the CAB SDMA requirement from §4.5.
  [[nodiscard]] bool word_aligned() const noexcept;
};

}  // namespace nectar::mem
