// Convenience wrapper for application data buffers.
//
// Allocates a region in a simulated address space, with optional deliberate
// misalignment (to exercise the §4.5 word-alignment fallback), and provides
// deterministic fill/verify patterns so integration tests can check that the
// bytes that arrive are the bytes that were sent.
#pragma once

#include <cstdint>
#include <span>

#include "mem/address_space.h"

namespace nectar::mem {

class UserBuffer {
 public:
  UserBuffer(AddressSpace& as, std::size_t size, std::size_t misalign = 0)
      : as_(&as), size_(size), addr_(as.allocate(size, misalign)) {}
  UserBuffer(const UserBuffer&) = delete;
  UserBuffer& operator=(const UserBuffer&) = delete;
  UserBuffer(UserBuffer&& o) noexcept
      : as_(o.as_), size_(o.size_), addr_(o.addr_) {
    o.as_ = nullptr;
  }
  ~UserBuffer() {
    if (as_) as_->deallocate(addr_);
  }

  [[nodiscard]] VAddr addr() const noexcept { return addr_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] AddressSpace& space() const noexcept { return *as_; }

  [[nodiscard]] std::span<std::byte> view() { return as_->write_view(addr_, size_); }
  [[nodiscard]] std::span<const std::byte> view() const {
    return as_->read_view(addr_, size_);
  }

  // Deterministic byte pattern parameterized by `seed`; position-dependent so
  // reordering or truncation is detected, not just corruption.
  void fill_pattern(std::uint32_t seed);

  // Verify that [offset, offset+len) holds the pattern that fill_pattern
  // (same seed) would have produced at stream position `stream_pos`. Returns
  // the index of the first mismatch, or SIZE_MAX if all bytes match.
  [[nodiscard]] std::size_t verify_pattern(std::uint32_t seed, std::size_t offset,
                                           std::size_t len,
                                           std::size_t stream_pos) const;

  // The pattern byte at absolute stream position `pos` for `seed`.
  [[nodiscard]] static std::byte pattern_byte(std::uint32_t seed, std::size_t pos) noexcept;

  [[nodiscard]] Uio as_uio(std::size_t off = 0, std::size_t len = SIZE_MAX);

 private:
  AddressSpace* as_;
  std::size_t size_;
  VAddr addr_;
};

}  // namespace nectar::mem
