// Lazy-unpin pinned-buffer cache (paper §4.4.1, last paragraph).
//
// "For applications that reuse the same set of buffers repeatedly, this
//  overhead can be avoided by keeping the buffers pinned and mapped so the
//  overhead is amortized over several IO operations; buffers can be unpinned
//  lazily, thus limiting the number of pages that an application can have
//  pinned at one time."
//
// acquire() pins+maps only the pages of the range not already resident, and
// evicts least-recently-used resident pages (batched unpin) when the cache
// exceeds its page budget. With the cache disabled (max_pages == 0) every
// acquire pins+maps and every release unpins — the unoptimized behaviour the
// ablation benchmark compares against.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "mem/vm.h"

namespace nectar::mem {

class PinCache {
 public:
  // max_pages == 0 disables caching (eager unpin on release).
  PinCache(Vm& vm, std::size_t max_pages) : vm_(vm), max_pages_(max_pages) {}
  PinCache(const PinCache&) = delete;
  PinCache& operator=(const PinCache&) = delete;

  // Make [addr, addr+len) pinned and kernel-mapped, charging only for pages
  // not already resident. Pages touched become most-recently-used.
  sim::Task<void> acquire(AddressSpace& as, VAddr addr, std::size_t len,
                          sim::AccountId acct, sim::Priority prio);

  // Balance an acquire. With caching enabled this is free (lazy unpin); with
  // caching disabled it unpins immediately.
  sim::Task<void> release(AddressSpace& as, VAddr addr, std::size_t len,
                          sim::AccountId acct, sim::Priority prio);

  // Drop everything (process exit): unpins all resident pages.
  sim::Task<void> flush(sim::AccountId acct, sim::Priority prio);

  struct Stats {
    std::uint64_t page_hits = 0;
    std::uint64_t page_misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t resident_pages() const noexcept { return lru_.size(); }
  [[nodiscard]] bool enabled() const noexcept { return max_pages_ > 0; }

 private:
  struct PageKey {
    AddressSpace* as;
    VAddr page;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const noexcept {
      return std::hash<void*>{}(k.as) ^ std::hash<VAddr>{}(k.page * 0x9e3779b97f4a7c15ULL);
    }
  };

  Vm& vm_;
  std::size_t max_pages_;
  std::list<PageKey> lru_;  // front = most recent
  std::unordered_map<PageKey, std::list<PageKey>::iterator, PageKeyHash> index_;
  Stats stats_;
};

}  // namespace nectar::mem
