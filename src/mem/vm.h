// Virtual-memory operations with the paper's Table 2 cost model.
//
// DMA directly to/from an application address space requires pinning the
// pages and (in the OSF/1 design, §4.4.1) mapping them into kernel space from
// the socket layer, which runs in application context. The costs — measured
// by the authors with a microsecond timer on the CAB — are linear in the
// number of pages n:
//
//     pin    35  + 29  * n   microseconds
//     unpin  48  + 3.9 * n
//     map     6  + 4.5 * n
//
// Vm performs the bookkeeping (pin counts per page) and charges the modeled
// CPU time to the supplied account at the supplied priority.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mem/address_space.h"
#include "sim/cpu.h"
#include "sim/task.h"

namespace nectar::mem {

struct VmCosts {
  double pin_base_us = 35.0;
  double pin_per_page_us = 29.0;
  double unpin_base_us = 48.0;
  double unpin_per_page_us = 3.9;
  double map_base_us = 6.0;
  double map_per_page_us = 4.5;
};

class Vm {
 public:
  Vm(sim::Simulator& sim, sim::Cpu& cpu, VmCosts costs)
      : sim_(sim), cpu_(cpu), costs_(costs) {}
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // Pure cost calculators (pre-CPU-scaling), used both to charge time and by
  // the §7.3 analytic model.
  [[nodiscard]] sim::Duration pin_cost(std::size_t npages) const noexcept;
  [[nodiscard]] sim::Duration unpin_cost(std::size_t npages) const noexcept;
  [[nodiscard]] sim::Duration map_cost(std::size_t npages) const noexcept;

  // Pin/unpin/map the pages of [addr, addr+len) in `as`. Each op charges its
  // Table 2 cost; pin/unpin maintain per-page pin counts (unpinning a page
  // that is not pinned throws — it would be a kernel bug).
  sim::Task<void> pin(AddressSpace& as, VAddr addr, std::size_t len,
                      sim::AccountId acct, sim::Priority prio);
  sim::Task<void> unpin(AddressSpace& as, VAddr addr, std::size_t len,
                        sim::AccountId acct, sim::Priority prio);
  sim::Task<void> map(AddressSpace& as, VAddr addr, std::size_t len,
                      sim::AccountId acct, sim::Priority prio);

  // Batch variants used by the pin cache: n pages' worth of cost in one call.
  sim::Task<void> charge_pin(std::size_t npages, sim::AccountId acct, sim::Priority prio);
  sim::Task<void> charge_unpin(std::size_t npages, sim::AccountId acct, sim::Priority prio);
  sim::Task<void> charge_map(std::size_t npages, sim::AccountId acct, sim::Priority prio);

  // Bookkeeping-only pin/unpin of a single page, no cost charged. Used by
  // PinCache, which charges Table 2 costs in batches via charge_*.
  void pin_page_nocost(AddressSpace& as, VAddr page);
  void unpin_page_nocost(AddressSpace& as, VAddr page);

  [[nodiscard]] bool is_pinned(const AddressSpace& as, VAddr page) const noexcept;
  [[nodiscard]] std::size_t pinned_pages() const noexcept { return pinned_total_; }

  struct OpStats {
    std::uint64_t pin_ops = 0;
    std::uint64_t unpin_ops = 0;
    std::uint64_t map_ops = 0;
    std::uint64_t pages_pinned = 0;
    std::uint64_t pages_unpinned = 0;
    std::uint64_t pages_mapped = 0;
  };
  [[nodiscard]] const OpStats& stats() const noexcept { return stats_; }

 private:
  struct PageKey {
    const AddressSpace* as;
    VAddr page;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const noexcept {
      return std::hash<const void*>{}(k.as) ^ std::hash<VAddr>{}(k.page * 0x9e3779b97f4a7c15ULL);
    }
  };

  sim::Simulator& sim_;
  sim::Cpu& cpu_;
  VmCosts costs_;
  std::unordered_map<PageKey, int, PageKeyHash> pin_counts_;
  std::size_t pinned_total_ = 0;
  OpStats stats_;
};

}  // namespace nectar::mem
