#include "mem/address_space.h"

#include <cassert>
#include <stdexcept>

namespace nectar::mem {

VAddr AddressSpace::allocate(std::size_t size, std::size_t misalign) {
  assert(misalign < kPageSize);
  if (size == 0) throw std::invalid_argument("AddressSpace::allocate: zero size");
  const VAddr base = next_ + misalign;
  Region r;
  r.size = size;
  r.backing.assign(size, std::byte{0});
  regions_.emplace(base, std::move(r));
  bytes_mapped_ += size;
  // Advance past this region plus a one-page guard gap, re-aligned.
  next_ = page_base(base + size + 2 * kPageSize);
  return base;
}

void AddressSpace::deallocate(VAddr base) {
  auto it = regions_.find(base);
  if (it == regions_.end())
    throw std::out_of_range("AddressSpace::deallocate: unknown region");
  bytes_mapped_ -= it->second.size;
  regions_.erase(it);
}

const AddressSpace::Region* AddressSpace::find(VAddr addr, std::size_t len) const noexcept {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return nullptr;
  --it;
  const VAddr base = it->first;
  const Region& r = it->second;
  if (addr < base) return nullptr;
  if (addr - base + len > r.size) return nullptr;
  return &r;
}

std::span<std::byte> AddressSpace::write_view(VAddr addr, std::size_t len) {
  auto it = regions_.upper_bound(addr);
  if (it != regions_.begin()) {
    --it;
    const VAddr base = it->first;
    Region& r = it->second;
    if (addr >= base && addr - base + len <= r.size) {
      return std::span<std::byte>{r.backing.data() + (addr - base), len};
    }
  }
  throw std::out_of_range("AddressSpace(" + name_ + "): bad write access");
}

std::span<const std::byte> AddressSpace::read_view(VAddr addr, std::size_t len) const {
  if (const Region* r = find(addr, len)) {
    auto it = regions_.upper_bound(addr);
    --it;
    return std::span<const std::byte>{r->backing.data() + (addr - it->first), len};
  }
  throw std::out_of_range("AddressSpace(" + name_ + "): bad read access");
}

bool AddressSpace::valid(VAddr addr, std::size_t len) const noexcept {
  return find(addr, len) != nullptr;
}

Uio Uio::slice(std::size_t off, std::size_t len) const {
  Uio out;
  out.space = space;
  std::size_t skip = off;
  std::size_t want = len;
  for (const auto& v : iov) {
    if (want == 0) break;
    if (skip >= v.len) {
      skip -= v.len;
      continue;
    }
    const std::size_t avail = v.len - skip;
    const std::size_t take = avail < want ? avail : want;
    out.iov.push_back(UioVec{v.base + skip, take});
    want -= take;
    skip = 0;
  }
  if (want != 0) throw std::out_of_range("Uio::slice: range exceeds uio");
  return out;
}

bool Uio::word_aligned() const noexcept {
  for (const auto& v : iov) {
    if (v.base % 4 != 0) return false;
  }
  return true;
}

}  // namespace nectar::mem
