#include "mem/vm.h"

#include <stdexcept>

namespace nectar::mem {

namespace {
sim::Duration linear_cost(double base_us, double per_page_us, std::size_t n) noexcept {
  if (n == 0) return 0;
  return sim::usec(base_us + per_page_us * static_cast<double>(n));
}
}  // namespace

sim::Duration Vm::pin_cost(std::size_t n) const noexcept {
  return linear_cost(costs_.pin_base_us, costs_.pin_per_page_us, n);
}
sim::Duration Vm::unpin_cost(std::size_t n) const noexcept {
  return linear_cost(costs_.unpin_base_us, costs_.unpin_per_page_us, n);
}
sim::Duration Vm::map_cost(std::size_t n) const noexcept {
  return linear_cost(costs_.map_base_us, costs_.map_per_page_us, n);
}

sim::Task<void> Vm::pin(AddressSpace& as, VAddr addr, std::size_t len,
                        sim::AccountId acct, sim::Priority prio) {
  const std::size_t n = pages_spanned(addr, len);
  if (n == 0) co_return;
  if (!as.valid(addr, len))
    throw std::out_of_range("Vm::pin: range not mapped in " + as.name());
  VAddr page = page_base(addr);
  for (std::size_t i = 0; i < n; ++i, page += kPageSize) {
    int& c = pin_counts_[PageKey{&as, page}];
    if (c++ == 0) ++pinned_total_;
  }
  ++stats_.pin_ops;
  stats_.pages_pinned += n;
  co_await cpu_.run(pin_cost(n), acct, prio);
}

sim::Task<void> Vm::unpin(AddressSpace& as, VAddr addr, std::size_t len,
                          sim::AccountId acct, sim::Priority prio) {
  const std::size_t n = pages_spanned(addr, len);
  if (n == 0) co_return;
  VAddr page = page_base(addr);
  for (std::size_t i = 0; i < n; ++i, page += kPageSize) {
    auto it = pin_counts_.find(PageKey{&as, page});
    if (it == pin_counts_.end() || it->second <= 0)
      throw std::logic_error("Vm::unpin: page not pinned");
    if (--it->second == 0) {
      pin_counts_.erase(it);
      --pinned_total_;
    }
  }
  ++stats_.unpin_ops;
  stats_.pages_unpinned += n;
  co_await cpu_.run(unpin_cost(n), acct, prio);
}

sim::Task<void> Vm::map(AddressSpace& as, VAddr addr, std::size_t len,
                        sim::AccountId acct, sim::Priority prio) {
  const std::size_t n = pages_spanned(addr, len);
  if (n == 0) co_return;
  if (!as.valid(addr, len))
    throw std::out_of_range("Vm::map: range not mapped in " + as.name());
  ++stats_.map_ops;
  stats_.pages_mapped += n;
  co_await cpu_.run(map_cost(n), acct, prio);
}

sim::Task<void> Vm::charge_pin(std::size_t n, sim::AccountId acct, sim::Priority prio) {
  ++stats_.pin_ops;
  stats_.pages_pinned += n;
  co_await cpu_.run(pin_cost(n), acct, prio);
}

sim::Task<void> Vm::charge_unpin(std::size_t n, sim::AccountId acct, sim::Priority prio) {
  ++stats_.unpin_ops;
  stats_.pages_unpinned += n;
  co_await cpu_.run(unpin_cost(n), acct, prio);
}

sim::Task<void> Vm::charge_map(std::size_t n, sim::AccountId acct, sim::Priority prio) {
  ++stats_.map_ops;
  stats_.pages_mapped += n;
  co_await cpu_.run(map_cost(n), acct, prio);
}

void Vm::pin_page_nocost(AddressSpace& as, VAddr page) {
  int& c = pin_counts_[PageKey{&as, page_base(page)}];
  if (c++ == 0) ++pinned_total_;
}

void Vm::unpin_page_nocost(AddressSpace& as, VAddr page) {
  auto it = pin_counts_.find(PageKey{&as, page_base(page)});
  if (it == pin_counts_.end() || it->second <= 0)
    throw std::logic_error("Vm::unpin_page_nocost: page not pinned");
  if (--it->second == 0) {
    pin_counts_.erase(it);
    --pinned_total_;
  }
}

bool Vm::is_pinned(const AddressSpace& as, VAddr page) const noexcept {
  auto it = pin_counts_.find(PageKey{&as, page_base(page)});
  return it != pin_counts_.end() && it->second > 0;
}

}  // namespace nectar::mem
