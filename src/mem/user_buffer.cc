#include "mem/user_buffer.h"

namespace nectar::mem {

std::byte UserBuffer::pattern_byte(std::uint32_t seed, std::size_t pos) noexcept {
  // Cheap position-mixing hash; must be fast since tests fill megabytes.
  std::uint64_t x = (static_cast<std::uint64_t>(seed) << 32) ^ pos;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::byte>(x & 0xff);
}

void UserBuffer::fill_pattern(std::uint32_t seed) {
  auto v = view();
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = pattern_byte(seed, i);
}

std::size_t UserBuffer::verify_pattern(std::uint32_t seed, std::size_t offset,
                                       std::size_t len, std::size_t stream_pos) const {
  auto v = as_->read_view(addr_ + offset, len);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] != pattern_byte(seed, stream_pos + i)) return i;
  }
  return SIZE_MAX;
}

Uio UserBuffer::as_uio(std::size_t off, std::size_t len) {
  if (len == SIZE_MAX) len = size_ - off;
  Uio u;
  u.space = as_;
  u.iov.push_back(UioVec{addr_ + off, len});
  return u;
}

}  // namespace nectar::mem
