#include "kernapp/kernel_socket.h"

#include "mem/user_buffer.h"

namespace nectar::kernapp {

using mbuf::Mbuf;

Mbuf* make_pattern_chain(mbuf::MbufPool& pool, std::size_t len, std::uint32_t seed,
                         std::size_t stream_pos) {
  Mbuf* head = nullptr;
  Mbuf** link = &head;
  std::size_t produced = 0;
  while (produced < len) {
    Mbuf* c = pool.get_cluster(false);
    const std::size_t take = std::min(len - produced, c->trailing_space());
    // Fill directly into the cluster.
    std::byte tmp[512];
    std::size_t off = 0;
    while (off < take) {
      const std::size_t n = std::min<std::size_t>(take - off, sizeof tmp);
      for (std::size_t i = 0; i < n; ++i)
        tmp[i] = mem::UserBuffer::pattern_byte(seed, stream_pos + produced + off + i);
      c->append(std::span<const std::byte>{tmp, n});
      off += n;
    }
    *link = c;
    link = &c->next;
    produced += take;
  }
  return head;
}

std::size_t verify_pattern_chain(const Mbuf* m, std::uint32_t seed,
                                 std::size_t stream_pos) {
  std::size_t errors = 0;
  std::size_t pos = stream_pos;
  for (; m != nullptr; m = m->next) {
    auto sp = m->span();
    for (std::size_t i = 0; i < sp.size(); ++i) {
      if (sp[i] != mem::UserBuffer::pattern_byte(seed, pos + i)) ++errors;
    }
    pos += sp.size();
  }
  return errors;
}

}  // namespace nectar::kernapp
