#include "kernapp/block_server.h"

#include "checksum/wire.h"
#include "core/interop.h"
#include "kernapp/kernel_socket.h"
#include "mem/user_buffer.h"

namespace nectar::kernapp {

using mbuf::Mbuf;

std::byte BlockServer::block_byte(std::uint32_t bn, std::size_t off) const {
  return mem::UserBuffer::pattern_byte(seed_ ^ (bn * 2654435761u), off);
}

sim::Task<void> BlockServer::serve(int requests) {
  auto& stack = host_.stack();
  auto& env = stack.env();
  net::KernCtx ctx{host_.intr_acct(), sim::Priority::Kernel};

  socket::Socket sock(stack, socket::Socket::Proto::kUdp);
  sock.bind(port_);

  for (int r = 0; r < requests; ++r) {
    auto dgram = co_await sock.recvfrom_mbufs(ctx);
    Mbuf* req = dgram.data;
    // Requests may arrive as WCAB if large packets were used; normalize.
    req = co_await core::convert_wcab_record(stack, ctx, req);
    if (mbuf::m_length(req) < static_cast<int>(kHdrSize)) {
      ++stats.bad_requests;
      env.pool.free_chain(req);
      continue;
    }
    req = mbuf::m_pullup(req, kHdrSize);
    const std::uint32_t bn = wire::load_be32(req->data());
    std::uint32_t len = wire::load_be32(req->data() + 4);
    env.pool.free_chain(req);
    if (len > kBlockSize) {
      ++stats.bad_requests;
      continue;
    }

    // Build the reply: header + block data from the "cache".
    Mbuf* reply = env.pool.get_hdr();
    reply->align_end(kHdrSize);
    std::byte hb[kHdrSize];
    wire::store_be32(hb, bn);
    wire::store_be32(hb + 4, len);
    reply->set_len(0);
    reply->append(std::span<const std::byte>{hb, kHdrSize});

    Mbuf* data = nullptr;
    Mbuf** link = &data;
    std::size_t produced = 0;
    while (produced < len) {
      Mbuf* c = env.pool.get_cluster(false);
      const std::size_t take = std::min<std::size_t>(len - produced,
                                                     c->trailing_space());
      std::byte tmp[512];
      std::size_t off = 0;
      while (off < take) {
        const std::size_t n = std::min<std::size_t>(take - off, sizeof tmp);
        for (std::size_t i = 0; i < n; ++i)
          tmp[i] = block_byte(bn, produced + off + i);
        c->append(std::span<const std::byte>{tmp, n});
        off += n;
      }
      *link = c;
      link = &c->next;
      produced += take;
    }
    reply->next = data;
    reply->clear_flags(mbuf::kMPktHdr);

    ++stats.requests;
    stats.bytes_served += len;
    co_await sock.sendto_mbufs(ctx, reply, dgram.src, dgram.sport);
  }
}

}  // namespace nectar::kernapp
