// Helpers for in-kernel applications (§5).
//
// In-kernel applications use share semantics: mbuf chains are the shared
// buffers. Through the CAB this automatically yields single-copy
// communication ("the data is copied once using DMA, and the checksum is
// calculated during that copy"); through existing devices the chains are
// plain kernel data and nothing changes.
#pragma once

#include "mbuf/mbuf_ops.h"

namespace nectar::kernapp {

// Build a cluster-backed chain of `len` bytes holding the deterministic
// pattern used by tests (position `stream_pos` onward, UserBuffer pattern).
mbuf::Mbuf* make_pattern_chain(mbuf::MbufPool& pool, std::size_t len,
                               std::uint32_t seed, std::size_t stream_pos = 0);

// Verify a readable chain against the pattern. Returns the number of
// mismatching bytes (chain must not contain descriptor mbufs — convert
// M_WCAB records with core::convert_wcab_record first).
std::size_t verify_pattern_chain(const mbuf::Mbuf* m, std::uint32_t seed,
                                 std::size_t stream_pos = 0);

}  // namespace nectar::kernapp
