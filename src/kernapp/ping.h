// ICMP-like echo responder (§5's "applications with low bandwidth
// requirements such as ICMP"): a raw-IP in-kernel handler that bounces
// any packet of the echo protocol back to its sender.
#pragma once

#include "core/host.h"
#include "core/interop.h"

namespace nectar::kernapp {

inline constexpr std::uint8_t kProtoEcho = 253;  // RFC 3692 experimental

class PingResponder {
 public:
  explicit PingResponder(core::Host& host);

  struct Stats {
    std::uint64_t echoed = 0;
  };
  Stats stats;

 private:
  sim::Task<void> respond(mbuf::Mbuf* pkt, net::IpAddr src, net::IpAddr dst);
  core::Host& host_;
};

// Client helper: send `len` pattern bytes to `dst`, await the echo, verify.
// Returns round-trip time, or -1 on timeout/corruption.
sim::Task<sim::Duration> ping_once(core::Host& host, net::IpAddr dst,
                                   std::size_t len, std::uint32_t seed,
                                   sim::Duration timeout = 5 * sim::kSecond);

}  // namespace nectar::kernapp
