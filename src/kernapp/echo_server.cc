#include "kernapp/echo_server.h"

namespace nectar::kernapp {

using mbuf::Mbuf;

sim::Task<void> EchoServer::serve(int connections) {
  auto& stack = host_.stack();
  net::KernCtx ctx{host_.intr_acct(), sim::Priority::Kernel};

  for (int c = 0; c < connections; ++c) {
    socket::Socket sock(stack, socket::Socket::Proto::kTcp, opts_);
    sock.listen(port_);
    if (!co_await sock.tcp().wait_established()) co_return;
    ++stats.connections;

    for (;;) {
      Mbuf* chain = co_await sock.recv_mbufs(ctx, 64 * 1024);
      if (chain == nullptr) break;  // EOF
      bool had_wcab = false;
      for (Mbuf* m = chain; m != nullptr; m = m->next) {
        if (m->type() == mbuf::MbufType::kWcab) had_wcab = true;
      }
      if (had_wcab) {
        ++stats.wcab_records_converted;
        chain = co_await core::convert_wcab_record(stack, ctx, chain);
      }
      stats.bytes_echoed += static_cast<std::uint64_t>(mbuf::m_length(chain));
      co_await sock.send_mbufs(ctx, chain);
    }
    co_await sock.tcp().close(ctx);
    co_await sock.tcp().wait_closed();
  }
}

}  // namespace nectar::kernapp
