#include "kernapp/ping.h"

#include "kernapp/kernel_socket.h"
#include "net/ip.h"

namespace nectar::kernapp {

using mbuf::Mbuf;

PingResponder::PingResponder(core::Host& host) : host_(host) {
  host_.stack().set_raw_handler(
      kProtoEcho, [this](Mbuf* pkt, const net::IpHeader& ih) {
        sim::spawn(respond(pkt, ih.src, ih.dst));
      });
}

sim::Task<void> PingResponder::respond(Mbuf* pkt, net::IpAddr src, net::IpAddr dst) {
  auto& stack = host_.stack();
  net::KernCtx ctx{host_.intr_acct(), sim::Priority::Kernel};
  // Large echoes arrive partly outboard; the reply must be host-readable
  // kernel data (outboard buffers cannot be re-transmitted as fresh data).
  pkt = co_await core::convert_wcab_record(stack, ctx, pkt);
  if (!pkt->has_pkthdr()) pkt->add_flags(mbuf::kMPktHdr);
  pkt->pkthdr.len = mbuf::m_length(pkt);
  pkt->pkthdr.csum_tx = {};
  pkt->pkthdr.rx_hw_sum_valid = false;
  ++stats.echoed;
  co_await stack.ip().output(ctx, pkt, dst, src, kProtoEcho);
}

sim::Task<sim::Duration> ping_once(core::Host& host, net::IpAddr dst,
                                   std::size_t len, std::uint32_t seed,
                                   sim::Duration timeout) {
  auto& stack = host.stack();
  auto& env = stack.env();
  net::KernCtx ctx{host.intr_acct(), sim::Priority::Kernel};

  struct Reply {
    bool got = false;
    std::size_t errors = 0;
    sim::Time when = 0;
    sim::Condition cond;
    explicit Reply(sim::Simulator& s) : cond(s) {}
  };
  auto reply = std::make_shared<Reply>(env.sim);

  stack.set_raw_handler(kProtoEcho, [reply, &host, seed](Mbuf* pkt,
                                                         const net::IpHeader&) {
    auto r = reply;
    auto conv = [](core::Host& h, Mbuf* p, std::shared_ptr<Reply> rr,
                   std::uint32_t sd) -> sim::Task<void> {
      net::KernCtx c{h.intr_acct(), sim::Priority::Kernel};
      p = co_await core::convert_wcab_record(h.stack(), c, p);
      rr->errors = verify_pattern_chain(p, sd);
      h.pool().free_chain(p);
      rr->got = true;
      rr->when = h.sim().now();
      rr->cond.notify_all();
    };
    sim::spawn(conv(host, pkt, r, seed));
  });

  const sim::Time start = env.sim.now();
  Mbuf* pkt = make_pattern_chain(env.pool, len, seed);
  pkt->add_flags(mbuf::kMPktHdr);
  pkt->pkthdr.len = static_cast<int>(len);
  co_await stack.ip().output(ctx, pkt, stack.source_addr_for(dst), dst, kProtoEcho);

  const sim::Time deadline = start + timeout;
  while (!reply->got && env.sim.now() < deadline) {
    // Wake on reply or poll at coarse granularity for the timeout.
    auto timer = env.sim.timer_after(sim::msec(50), [reply] { reply->cond.notify_all(); });
    co_await reply->cond.wait();
    timer.cancel();
  }
  stack.set_raw_handler(kProtoEcho, nullptr);
  if (!reply->got || reply->errors != 0) co_return -1;
  co_return reply->when - start;
}

}  // namespace nectar::kernapp
