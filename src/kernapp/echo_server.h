// In-kernel TCP echo server (§5): receives mbuf chains, converts any M_WCAB
// data to regular mbufs (the asynchronous-DMA conversion of the interop
// layer), and sends the same bytes back with share semantics.
#pragma once

#include "core/host.h"
#include "core/interop.h"
#include "socket/socket.h"

namespace nectar::kernapp {

class EchoServer {
 public:
  EchoServer(core::Host& host, std::uint16_t port, socket::SocketOptions opts = {})
      : host_(host), port_(port), opts_(opts) {}

  // Serve `connections` sequential connections (coroutine; sim::spawn it).
  sim::Task<void> serve(int connections);

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t bytes_echoed = 0;
    std::uint64_t wcab_records_converted = 0;
  };
  Stats stats;

 private:
  core::Host& host_;
  std::uint16_t port_;
  socket::SocketOptions opts_;
};

}  // namespace nectar::kernapp
