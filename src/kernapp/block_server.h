// In-kernel block server (§5): a file-server-like "IO intensive" kernel
// application. Clients send small UDP read requests; the server replies with
// block data straight from its in-kernel block cache as cluster-mbuf chains —
// share semantics, so through the CAB these replies get the single-copy +
// outboard-checksum treatment with zero changes to the server.
//
// Request wire format (big-endian): u32 block_number, u32 length.
// Reply: u32 block_number, u32 length, then the data.
#pragma once

#include "core/host.h"
#include "socket/socket.h"

namespace nectar::kernapp {

class BlockServer {
 public:
  static constexpr std::size_t kBlockSize = 64 * 1024;
  static constexpr std::size_t kHdrSize = 8;

  BlockServer(core::Host& host, std::uint16_t port, std::uint32_t pattern_seed = 31)
      : host_(host), port_(port), seed_(pattern_seed) {}

  // Serve `requests` requests (coroutine; sim::spawn it).
  sim::Task<void> serve(int requests);

  // The deterministic content of block `bn` at offset `off` (for client
  // verification).
  [[nodiscard]] std::byte block_byte(std::uint32_t bn, std::size_t off) const;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t bytes_served = 0;
    std::uint64_t bad_requests = 0;
  };
  Stats stats;

 private:
  core::Host& host_;
  std::uint16_t port_;
  std::uint32_t seed_;
};

}  // namespace nectar::kernapp
