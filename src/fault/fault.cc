#include "fault/fault.h"

#include <stdexcept>

namespace nectar::fault {

const char* fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kSdmaError: return "sdma_error";
    case FaultKind::kSdmaStall: return "sdma_stall";
    case FaultKind::kMdmaError: return "mdma_error";
    case FaultKind::kMdmaStall: return "mdma_stall";
    case FaultKind::kChecksumFail: return "checksum_fail";
    case FaultKind::kNetmemExhaust: return "netmem_exhaust";
    case FaultKind::kNetmemLeak: return "netmem_leak";
    case FaultKind::kFirmwareStall: return "firmware_stall";
    case FaultKind::kLinkFlap: return "link_flap";
  }
  return "unknown";
}

bool FaultInjector::is_window_kind(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kSdmaStall:
    case FaultKind::kMdmaStall:
    case FaultKind::kChecksumFail:
    case FaultKind::kNetmemExhaust:
    case FaultKind::kFirmwareStall:
    case FaultKind::kLinkFlap:
      return true;
    default:
      return false;
  }
}

void FaultInjector::validate(const FaultSpec& s) const {
  if (s.kind == FaultKind::kLinkFlap) {
    if (links_.find(s.target) == links_.end())
      throw std::invalid_argument("fault: unknown link target '" + s.target + "'");
  } else if (adaptors_.find(s.target) == adaptors_.end()) {
    throw std::invalid_argument("fault: unknown adaptor target '" + s.target + "'");
  }
  if (is_window_kind(s.kind) && s.duration <= 0)
    throw std::invalid_argument(std::string("fault: window kind '") +
                                fault_kind_name(s.kind) + "' needs duration > 0");
  if (s.kind == FaultKind::kNetmemLeak && s.leak_pages == 0)
    throw std::invalid_argument("fault: netmem_leak needs leak_pages > 0");
  if (s.repeats > 0 && s.period <= 0)
    throw std::invalid_argument("fault: recurring fault needs period > 0");
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const auto& s : plan.faults) validate(s);
  // One rng for the whole plan, consumed in a fixed order (spec-major,
  // occurrence-minor): identical seed + plan => identical schedule.
  hippi::ImpairmentRng rng(plan.seed);
  const sim::Time now = sim_.now();
  for (const auto& s : plan.faults) {
    for (std::uint32_t k = 0; k <= s.repeats; ++k) {
      sim::Time t = s.at + static_cast<sim::Duration>(k) * s.period;
      if (k > 0 && s.jitter > 0.0) {
        const auto span = static_cast<std::uint64_t>(s.jitter * static_cast<double>(s.period));
        if (span > 0) t += static_cast<sim::Duration>(rng.below(span));
      }
      if (t < now) t = now;
      // Copy the spec into the event: the plan may not outlive arming.
      sim_.at(t, [this, s] { apply(s); });
    }
  }
}

void FaultInjector::apply(const FaultSpec& s) {
  ++injections_;
  ++applied_[s.target + "." + fault_kind_name(s.kind)];

  if (s.kind == FaultKind::kLinkFlap) {
    hippi::PartitionFabric* link = links_.at(s.target);
    link->set_down(true);
    ++active_;
    sim_.after(s.duration, [this, s] { end_window(s); });
    return;
  }

  drivers::CabDriver* drv = adaptors_.at(s.target);
  cab::CabDevice& dev = drv->device();
  switch (s.kind) {
    case FaultKind::kSdmaError:
      dev.sdma().inject_errors(s.count);
      break;
    case FaultKind::kSdmaStall:
      dev.sdma().set_stalled(true);
      break;
    case FaultKind::kMdmaError:
      dev.mdma_xmit().inject_errors(s.count);
      break;
    case FaultKind::kMdmaStall:
      dev.mdma_xmit().set_stalled(true);
      break;
    case FaultKind::kChecksumFail:
      dev.sdma().checksum().set_failed(true);
      break;
    case FaultKind::kNetmemExhaust:
      dev.nm().set_force_exhausted(true);
      break;
    case FaultKind::kNetmemLeak:
      dev.nm().leak_pages(s.leak_pages);
      break;
    case FaultKind::kFirmwareStall:
      dev.set_fw_stalled(true);
      break;
    case FaultKind::kLinkFlap:
      break;  // handled above
  }
  if (is_window_kind(s.kind)) {
    ++active_;
    sim_.after(s.duration, [this, s] { end_window(s); });
  }
  // The error interrupt: the board reports trouble even when the host is
  // idle; without it a disarmed watchdog would never notice a quiet fault.
  drv->notify_fault();
}

void FaultInjector::end_window(const FaultSpec& s) {
  --active_;
  if (s.kind == FaultKind::kLinkFlap) {
    links_.at(s.target)->set_down(false);
    return;
  }
  drivers::CabDriver* drv = adaptors_.at(s.target);
  cab::CabDevice& dev = drv->device();
  switch (s.kind) {
    case FaultKind::kSdmaStall:
      dev.sdma().set_stalled(false);
      break;
    case FaultKind::kMdmaStall:
      dev.mdma_xmit().set_stalled(false);
      break;
    case FaultKind::kChecksumFail:
      dev.sdma().checksum().set_failed(false);
      break;
    case FaultKind::kNetmemExhaust:
      dev.nm().set_force_exhausted(false);
      break;
    case FaultKind::kFirmwareStall:
      // Clears the stall condition only: the engines it wedged stay wedged
      // until the driver's reset brings the board back up (§ recovery).
      dev.set_fw_stalled(false);
      break;
    default:
      break;
  }
  // Recovery probes on the way out too, so degraded modes exit at a
  // deterministic time instead of waiting for the next watchdog tick.
  drv->notify_fault();
}

}  // namespace nectar::fault
