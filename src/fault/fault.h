// Adaptor fault injection: seeded, scheduleable faults against named
// components, with the driver's recovery machinery as the system under test.
//
// The wire impairments (hippi/impairment.h) model a hostile *network*; this
// subsystem models a failing *adaptor*: DMA engines that error or stall, a
// checksum unit whose summation datapath breaks, network memory that runs
// out or leaks, a firmware stall that wedges the whole board until the
// driver resets it, and — reusing PartitionFabric — link flaps.
//
// A FaultPlan is a list of FaultSpecs plus a seed. Arming the plan schedules
// every injection as ordinary simulator events; the same seed and plan
// always produce the same injection times and therefore (the simulator being
// deterministic) the same fault.* / recovery.* counters and goodput.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "drivers/cab_driver.h"
#include "hippi/impairment.h"

namespace nectar::fault {

enum class FaultKind {
  kSdmaError,      // next `count` SDMA requests fail (transfer error)
  kSdmaStall,      // SDMA engine serves nothing for `duration`
  kMdmaError,      // next `count` media transmits fail (wire loss)
  kMdmaStall,      // MDMA transmit engine stalls for `duration`
  kChecksumFail,   // checksum summation datapath broken for `duration`
  kNetmemExhaust,  // every outboard allocation fails for `duration`
  kNetmemLeak,     // `leak_pages` pages vanish until a driver reset
  kFirmwareStall,  // whole board wedges; clearing needs a driver reset
  kLinkFlap,       // link target: blackhole for `duration`
};

[[nodiscard]] const char* fault_kind_name(FaultKind k) noexcept;

// One fault, addressed to a registered component by name. `at` is the first
// injection; `period`/`repeats` make it recurring; `jitter` (fraction of
// period) perturbs recurrences with the plan's seeded rng — deterministically.
struct FaultSpec {
  std::string target;
  FaultKind kind = FaultKind::kSdmaError;
  sim::Time at = 0;
  sim::Duration duration = 0;    // window kinds: how long the fault holds
  std::uint32_t count = 1;       // error kinds: how many requests fail
  std::size_t leak_pages = 0;    // kNetmemLeak
  sim::Duration period = 0;      // 0 = one-shot
  std::uint32_t repeats = 0;     // recurrences after the first injection
  double jitter = 0.0;           // in [0,1): fraction of period
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  FaultPlan& add(FaultSpec s) {
    faults.push_back(std::move(s));
    return *this;
  }
};

// Applies a FaultPlan to registered components. Adaptor faults poke the CAB
// hardware model and then raise the driver's error interrupt (notify_fault)
// so recovery reacts at a deterministic time; link faults toggle a
// PartitionFabric and are the transport's problem.
class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulator& sim) : sim_(sim) {}

  void register_adaptor(std::string name, drivers::CabDriver& drv) {
    adaptors_[std::move(name)] = &drv;
  }
  void register_link(std::string name, hippi::PartitionFabric& link) {
    links_[std::move(name)] = &link;
  }

  // Schedule every injection in the plan. Unknown targets throw immediately
  // (a misaddressed fault that silently does nothing would make a scenario
  // vacuously pass). Window kinds require duration > 0.
  void arm(const FaultPlan& plan);

  // "target.kind" -> times applied, in deterministic (sorted) order.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return applied_;
  }
  [[nodiscard]] std::uint64_t injections() const noexcept { return injections_; }
  // Injections whose window has not ended yet (gauge).
  [[nodiscard]] std::uint64_t active_windows() const noexcept { return active_; }

 private:
  void validate(const FaultSpec& s) const;
  void apply(const FaultSpec& s);
  void end_window(const FaultSpec& s);
  [[nodiscard]] static bool is_window_kind(FaultKind k) noexcept;

  sim::Simulator& sim_;
  std::map<std::string, drivers::CabDriver*> adaptors_;
  std::map<std::string, hippi::PartitionFabric*> links_;
  std::map<std::string, std::uint64_t> applied_;
  std::uint64_t injections_ = 0;
  std::uint64_t active_ = 0;
};

}  // namespace nectar::fault
