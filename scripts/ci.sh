#!/bin/sh
# CI entry point: build and test the two supported configurations, then
# smoke-run the wall-clock bench harness.
#
#  * Debug: no NDEBUG, every assert live — the config that catches contract
#    violations.
#  * Release (-O2 -DNDEBUG): asserts compiled out — the config that catches
#    code with side effects hidden inside assert(), and the one perf numbers
#    should be quoted from (RelWithDebInfo, the developer default, is close
#    but carries -g).
set -eu
cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug
cmake --build build-debug -j"$jobs"
ctest --test-dir build-debug --output-on-failure -j"$jobs"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
cmake --build build-release -j"$jobs"
ctest --test-dir build-release --output-on-failure -j"$jobs"

build-release/bench/wallclock --quick --json \
    build-release/BENCH_wallclock_smoke.json
build-release/bench/flow_scaling --quick --json \
    build-release/BENCH_flow_scaling_smoke.json
build-release/bench/fault_recovery --quick --json \
    build-release/BENCH_fault_recovery_smoke.json
build-release/bench/latency_profile --quick --json \
    build-release/BENCH_latency_smoke.json
build-release/bench/offload_sweep --quick --json \
    build-release/BENCH_offload_smoke.json
build-release/bench/workload --quick --json \
    build-release/BENCH_workload_smoke.json
build-release/bench/overload --quick --json \
    build-release/BENCH_overload_smoke.json

# Schema validation: every benchmark artifact — committed or freshly emitted
# by the smoke runs above — must carry the versioned-schema marker so
# downstream consumers can detect layout changes.
for f in BENCH_*.json build-release/BENCH_*.json; do
    [ -e "$f" ] || continue
    grep -q '"schema_version"' "$f" || {
        echo "ci: $f is missing schema_version" >&2
        exit 1
    }
done

# ASan/UBSan lane over the many-flow, fault, telemetry and offload suites:
# connect/close churn through the demux hash table, the CAB arbitration
# queues and the listener backlog is exactly where lifetime and aliasing bugs
# would hide — the fault injector's reset/abort/retry paths free and re-post
# DMA jobs, the other classic source of use-after-free — the telemetry hooks
# ride every one of those paths (span ends from abort callbacks, gauge
# closures over engine internals), and the TSO/GRO paths juggle multi-MTU
# descriptors and batched receive chains across the same completion
# callbacks.  The control-plane suites join the same lane: the timer wheel
# recycles bucket slots through a freelist, SYN-cookie acceptance
# materialises connections from nothing (no embryonic object to misuse, but
# plenty of room for stale-handle cancels), and the churn smoke slams 5k
# connections through compact TIME-WAIT slab recycling.  The wload frontend
# rides along because the socket shim owns Socket/Listener lifetimes across
# coroutine suspension points (wclose's linger, wpoll's readiness probes) and
# the population generator tears down hundreds of shim sockets concurrently —
# the exact shape of use-after-free the zombie-socket machinery exists to
# prevent.  The overload suites round out the lane: the admission gate and
# ECN hooks poll resource samplers (closures over pool/arbiter/network-memory
# internals) from deep inside the send and SYN paths, and the ops console
# holds host references across periodic coroutine ticks — both are fresh
# aliasing surfaces.  The 10x flash-crowd soak stays out of this fast lane
# and runs under TSan below instead.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build build-asan -j"$jobs"
ctest --test-dir build-asan --output-on-failure -j"$jobs" \
      -R 'ConnTable|FlowMatrix|FlowSoak|flow_scaling|Fault|bench_fault_recovery|Telemetry|LogHistogram|PacketTraceDropped|bench_latency|Offload|TsoCutFuzz|bench_offload|TimerWheel|SynCookie|bench_churn|Wload|PacketTrace\.PcapRoundTrip|bench_workload|ArbPolicyNames|WeightedFair|OverloadManager|OverloadEndToEnd|OverloadNetstat|OpsConsole|bench_overload'

# ThreadSanitizer lane over the parallel sharded engine: the barrier,
# epoch-publication, and outbox/drain handoffs are the only places the
# codebase shares state across threads, so TSan runs exactly the suites that
# exercise them — the engine unit tests, the RNG-stream and determinism-
# oracle tests, and a >=2-worker flow-scaling smoke (quick mode runs its
# parallel sweep at 1 and 2 workers and fails on any cross-worker
# divergence).  The overload flash-crowd soak also rides this slow lane: it
# is the longest-running integration test, so it pairs with the slow
# sanitizer config rather than bloating the ASan sweep above.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake --build build-tsan -j"$jobs"
ctest --test-dir build-tsan --output-on-failure -j"$jobs" \
      -R 'Parallel|RngStreams|EventQueueStats|OverloadSoak'
build-tsan/bench/flow_scaling --quick --json \
    build-tsan/BENCH_flow_scaling_tsan_smoke.json
grep -q '"deterministic_across_workers": true' \
    build-tsan/BENCH_flow_scaling_tsan_smoke.json || {
    echo "ci: tsan flow_scaling smoke lost cross-worker determinism" >&2
    exit 1
}

echo "ci: all configs green"
